"""Equivalence and property tests for the lattice-pruned query engine.

The engine's contract is *bit-identical results at lower cost*, so
nearly every test here compares an optimised path against its naive
reference: lattice-pruned embedding vs per-feature VF2, partitioned
top-k vs full lexsort, profile-carrying VF2 vs profile-free, fused DSPM
iterates vs the literal kernels.
"""

import numpy as np
import pytest

from repro.core.dspm import DSPM
from repro.core.mapping import mapping_from_selection
from repro.datasets import synthetic_database, synthetic_query_set
from repro.features.binary_matrix import (
    FeatureSpace,
    cross_normalized_euclidean_distances,
)
from repro.graph.generators import graphgen_database
from repro.isomorphism.vf2 import (
    PatternProfile,
    TargetProfile,
    _search_order,
    is_subgraph,
)
from repro.mining import mine_frequent_subgraphs
from repro.query.engine import FeatureLattice, QueryEngine
from repro.query.topk import MappedTopKEngine, rank_with_ties


@pytest.fixture(scope="module")
def setup():
    db = synthetic_database(40, avg_edges=16, density=0.3, num_labels=5, seed=3)
    queries = synthetic_query_set(
        50, avg_edges=16, density=0.3, num_labels=5, seed=99
    )
    features = mine_frequent_subgraphs(db, min_support=0.2, max_edges=5)
    space = FeatureSpace(features, len(db))
    return db, queries, space


@pytest.fixture(scope="module")
def selected_mapping(setup):
    _db, _queries, space = setup
    # A deterministic mid-support selection (mimics DSPM's preference).
    s = space.support_counts
    score = s * (space.n - s)
    order = np.lexsort((np.arange(space.m), -score))
    return mapping_from_selection(space, [int(r) for r in order[:20]])


@pytest.fixture(scope="module")
def full_mapping(setup):
    _db, _queries, space = setup
    return mapping_from_selection(space, list(range(space.m)))


class TestLattice:
    def test_ancestors_are_contained(self, selected_mapping):
        engine = selected_mapping.query_engine()
        lattice = engine.lattice
        for r, anc in enumerate(lattice.ancestors):
            for a in anc:
                assert is_subgraph(engine.patterns[a], engine.patterns[r])

    def test_descendants_transpose_ancestors(self, selected_mapping):
        lattice = selected_mapping.query_engine().lattice
        pairs = {(a, r) for r, anc in enumerate(lattice.ancestors) for a in anc}
        transposed = {
            (r, d) for r, desc in enumerate(lattice.descendants) for d in desc
        }
        assert pairs == transposed
        assert lattice.num_edges == len(pairs)

    def test_order_is_smallest_first_permutation(self, full_mapping):
        engine = full_mapping.query_engine()
        order = list(engine.lattice.order)
        assert sorted(order) == list(range(len(engine.patterns)))
        sizes = [engine.patterns[r].num_edges for r in order]
        assert sizes == sorted(sizes)

    def test_transitivity_shortcut_skips_checks(self, full_mapping):
        lattice = full_mapping.query_engine().lattice
        p = len(lattice.ancestors)
        # Worst case is one VF2 per ordered size-compatible pair; the
        # shortcut must have skipped at least the closed triangles.
        assert lattice.vf2_checks < p * (p - 1) // 2 + p


class TestEmbeddingEquivalence:
    def test_engine_equals_naive_on_50_queries(self, setup, selected_mapping):
        _db, queries, space = setup
        engine = selected_mapping.query_engine()
        for q in queries:
            naive = space.embed_query(q, selected_mapping.selected)
            assert np.array_equal(engine.embed(q), naive)

    def test_engine_equals_naive_full_universe(self, setup, full_mapping):
        _db, queries, space = setup
        engine = full_mapping.query_engine()
        vectors = engine.embed_many(queries)
        assert np.array_equal(vectors, space.embed_queries(queries))

    def test_pivot_engine_is_also_exact(self, setup, selected_mapping):
        _db, queries, _space = setup
        pivoted = QueryEngine(selected_mapping, use_pivots=True)
        plain = selected_mapping.query_engine()
        for q in queries[:20]:
            assert np.array_equal(pivoted.embed(q), plain.embed(q))
        assert len(pivoted.patterns) >= len(plain.patterns)

    def test_pruning_saves_vf2_calls(self, setup, full_mapping):
        _db, queries, space = setup
        engine = QueryEngine(full_mapping)
        engine.embed_many(queries)
        assert engine.stats.vf2_calls < engine.stats.queries * space.m
        assert engine.stats.features_pruned > 0

    def test_empty_batch(self, selected_mapping):
        engine = selected_mapping.query_engine()
        vectors = engine.embed_many([])
        assert vectors.shape == (0, selected_mapping.dimensionality)


class TestQueryEquivalence:
    def test_single_query_matches_naive_engine(self, setup, selected_mapping):
        db, queries, _space = setup
        naive = MappedTopKEngine(selected_mapping)
        engine = selected_mapping.query_engine()
        for q in queries[:25]:
            a = naive.query(q, 7)
            b = engine.query(q, 7)
            assert a.ranking == b.ranking
            assert a.scores == b.scores

    def test_batch_query_matches_naive_engine(self, setup, selected_mapping):
        _db, queries, _space = setup
        naive = MappedTopKEngine(selected_mapping)
        engine = selected_mapping.query_engine()
        batch = engine.batch_query(queries, 5)
        assert len(batch) == len(queries)
        for q, res in zip(queries, batch):
            ref = naive.query(q, 5)
            assert ref.ranking == res.ranking
            assert ref.scores == res.scores
        assert batch.query_vectors.shape == (
            len(queries),
            selected_mapping.dimensionality,
        )
        assert batch.total_seconds == pytest.approx(
            batch.mapping_seconds + batch.search_seconds
        )

    def test_query_engine_is_cached_on_mapping(self, selected_mapping):
        assert selected_mapping.query_engine() is selected_mapping.query_engine()


class TestRankWithTies:
    @staticmethod
    def _reference(values, k):
        order = np.lexsort((np.arange(len(values)), values))
        top = order[:k]
        return [int(i) for i in top], [float(values[i]) for i in top]

    def test_matches_full_lexsort_on_tie_heavy_arrays(self):
        rng = np.random.default_rng(0)
        for trial in range(50):
            n = int(rng.integers(1, 200))
            # Few distinct values => many ties, including at the boundary.
            values = rng.integers(0, 4, size=n).astype(float) / 3.0
            k = int(rng.integers(1, n + 1))
            assert rank_with_ties(values, k) == self._reference(values, k)

    def test_k_zero_and_empty(self):
        assert rank_with_ties(np.array([1.0, 2.0]), 0) == ([], [])
        assert rank_with_ties(np.array([]), 3) == ([], [])

    def test_nan_values_rank_last(self):
        values = np.array([0.5, np.nan, 0.1, np.nan])
        ranking, scores = rank_with_ties(values, 3)
        ref_ranking, ref_scores = self._reference(values, 3)
        assert ranking == ref_ranking
        assert scores == pytest.approx(ref_scores, nan_ok=True)


class TestProfiles:
    def test_profiled_is_subgraph_equals_plain(self):
        graphs = graphgen_database(12, avg_edges=8, num_labels=3, seed=5)
        for pattern in graphs[:4]:
            pp = PatternProfile(pattern)
            for target in graphs:
                tp = TargetProfile(target)
                assert is_subgraph(pattern, target, tp, pp) == is_subgraph(
                    pattern, target
                )

    def test_mismatched_profiles_raise(self, setup):
        db, _queries, _space = setup
        with pytest.raises(ValueError):
            is_subgraph(db[0], db[1], TargetProfile(db[2]))
        with pytest.raises(ValueError):
            is_subgraph(db[0], db[1], None, PatternProfile(db[2]))

    def test_search_order_is_connected_permutation(self):
        graphs = graphgen_database(10, avg_edges=12, num_labels=3, seed=11)
        for g in graphs:
            order = _search_order(g)
            assert sorted(order) == list(range(g.num_vertices))
            # A vertex with no earlier neighbor starts a new component;
            # every other vertex must extend the visited set along an
            # edge.  Exactly one seed per connected component.
            seen = set()
            seeds = 0
            for v in order:
                if not any(w in seen for w in g.neighbors(v)):
                    seeds += 1
                seen.add(v)
            assert seeds == len(g.connected_components())


class TestDistanceCaching:
    def test_precomputed_norms_identical(self):
        rng = np.random.default_rng(1)
        left = (rng.random((7, 13)) < 0.5).astype(float)
        right = (rng.random((9, 13)) < 0.5).astype(float)
        plain = cross_normalized_euclidean_distances(left, right)
        cached = cross_normalized_euclidean_distances(
            left, right, right_sq_norms=(right**2).sum(axis=1)
        )
        assert np.array_equal(plain, cached)

    def test_bad_norms_shape_raises(self):
        left = np.zeros((2, 3))
        right = np.zeros((4, 3))
        with pytest.raises(ValueError):
            cross_normalized_euclidean_distances(
                left, right, right_sq_norms=np.zeros(5)
            )

    def test_mapping_caches_sq_norms(self, selected_mapping):
        first = selected_mapping.database_sq_norms
        assert selected_mapping.database_sq_norms is first
        assert np.array_equal(
            first, (selected_mapping.database_vectors**2).sum(axis=1)
        )


class TestFusedDSPM:
    @pytest.fixture(scope="class")
    def matrix_setup(self):
        rng = np.random.default_rng(7)
        Y = (rng.random((12, 18)) < 0.45).astype(float)
        delta = np.abs(rng.normal(size=(12, 12)))
        delta = (delta + delta.T) / 2
        np.fill_diagonal(delta, 0.0)
        return Y, delta

    def test_histories_agree_across_all_kernels(self, matrix_setup):
        Y, delta = matrix_setup
        histories = {
            kernel: DSPM(4, max_iterations=5, tolerance=0.0, kernel=kernel)
            .fit_matrix(Y, delta)
            .objective_history
            for kernel in ("numpy", "inverted", "naive")
        }
        assert np.allclose(histories["numpy"], histories["inverted"])
        assert np.allclose(histories["numpy"], histories["naive"])

    def test_fused_kernel_counts_one_distance_per_iterate(self, matrix_setup):
        Y, delta = matrix_setup
        result = DSPM(4, max_iterations=5, tolerance=0.0).fit_matrix(Y, delta)
        assert result.distance_evaluations == result.iterations + 1

    def test_literal_kernels_count_two_per_iterate(self, matrix_setup):
        Y, delta = matrix_setup
        for kernel in ("inverted", "naive"):
            result = DSPM(
                4, max_iterations=3, tolerance=0.0, kernel=kernel
            ).fit_matrix(Y, delta)
            assert result.distance_evaluations == 2 * result.iterations + 1

    def test_fused_matches_unfused_reference_loop(self, matrix_setup):
        """Replay the pre-fusion loop (separate objective / transform
        distance computations) and demand the exact same trajectory."""
        Y, delta = matrix_setup
        n, m = Y.shape
        support = Y.sum(axis=0)
        c = np.full(m, 1.0 / np.sqrt(m))
        Z = Y * c
        history = [DSPM._objective_numpy(Y, c, Z, delta)]
        for _ in range(4):
            xbar = DSPM._xbar_numpy(Z, delta)
            c = DSPM._c_numpy(Y, xbar, support, n)
            Z = Y * c
            history.append(DSPM._objective_numpy(Y, c, Z, delta))
        fused = DSPM(4, max_iterations=4, tolerance=0.0).fit_matrix(Y, delta)
        assert fused.objective_history == history
