"""Tests for experiment reporting helpers."""

from pathlib import Path

from repro.experiments.reporting import format_table, series_table, write_report


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table("Title", ["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "-" * len("Title")
        assert "a" in lines[2] and "bb" in lines[2]
        assert "2.500" in text
        assert "0.125" in text

    def test_empty_rows(self):
        text = format_table("T", ["x"], [])
        assert "x" in text

    def test_custom_float_format(self):
        text = format_table("T", ["v"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in text
        assert "1.23" not in text


class TestSeriesTable:
    def test_series_columns(self):
        text = series_table(
            "S", "k", [1, 2], {"A": [0.1, 0.2], "B": [0.3, 0.4]}
        )
        lines = text.splitlines()
        header = lines[2]
        assert header.split() == ["k", "A", "B"]
        assert "0.100" in text and "0.400" in text


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        write_report("hello\n", tmp_path, "r.txt")
        assert (tmp_path / "r.txt").read_text() == "hello\n"

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        write_report("x", target, "r.txt")
        assert (target / "r.txt").exists()

    def test_none_out_dir_noop(self):
        write_report("x", None, "r.txt")  # must not raise
