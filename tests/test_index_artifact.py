"""Round-trip and cold-start tests for the format-v2 index artifact.

The artifact's contract: reloading restores *everything* the online path
needs, so ``load_index(path).query_engine()`` performs **zero** VF2
calls — neither the pattern-vs-pattern lattice build nor any per-feature
matching.  Enforced here with call counters on the two VF2 entry points
the engine construction path could reach.
"""

import json

import numpy as np
import pytest

import repro.query.engine as engine_mod
from repro.core.mapping import build_mapping
from repro.core.persistence import load_mapping, save_mapping, save_mapping_v1
from repro.index import IndexArtifact, load_index, save_index
from repro.query.engine import FeatureLattice
from repro.query.topk import MappedTopKEngine


@pytest.fixture(scope="module")
def built_mapping(small_chemical_db):
    return build_mapping(
        small_chemical_db, num_features=8, min_support=0.2, max_pattern_edges=3
    )


@pytest.fixture()
def saved_path(built_mapping, tmp_path):
    path = tmp_path / "index.json"
    save_index(built_mapping, path)
    return path


class _Counter:
    def __init__(self, func):
        self.func = func
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        return self.func(*args, **kwargs)


class TestColdStart:
    def test_reload_builds_engine_with_zero_vf2_calls(
        self, saved_path, monkeypatch
    ):
        """The acceptance criterion, counter-enforced."""
        is_subgraph = _Counter(engine_mod.is_subgraph)
        lattice_build = _Counter(FeatureLattice.build.__func__)
        monkeypatch.setattr(engine_mod, "is_subgraph", is_subgraph)
        monkeypatch.setattr(
            FeatureLattice, "build", classmethod(lattice_build)
        )
        mapping = load_index(saved_path)
        engine = mapping.query_engine()
        assert engine is not None
        assert is_subgraph.calls == 0
        assert lattice_build.calls == 0

    def test_reloaded_engine_is_preattached_and_memoised(self, saved_path):
        mapping = load_index(saved_path)
        assert mapping._engine is not None
        assert mapping.query_engine() is mapping._engine

    def test_invalidate_caches_forces_fresh_engine(
        self, saved_path, small_chemical_queries
    ):
        mapping = load_index(saved_path)
        warm = mapping.query_engine()
        before = [warm.query(q, 5).ranking for q in small_chemical_queries]
        mapping.invalidate_caches()
        rebuilt = mapping.query_engine()
        assert rebuilt is not warm
        after = [rebuilt.query(q, 5).ranking for q in small_chemical_queries]
        assert before == after

    def test_lattice_and_norms_round_trip(self, built_mapping, saved_path):
        original = built_mapping.query_engine()
        restored = load_index(saved_path).query_engine()
        assert restored.lattice.order == original.lattice.order
        assert restored.lattice.ancestors == original.lattice.ancestors
        assert restored.lattice.descendants == original.lattice.descendants
        assert np.array_equal(
            restored.mapping.database_sq_norms,
            built_mapping.database_sq_norms,
        )

    def test_profiles_round_trip(self, built_mapping, saved_path):
        original = built_mapping.query_engine()._pattern_profiles
        restored = load_index(saved_path).query_engine()._pattern_profiles
        for a, b in zip(original, restored):
            assert a.vertex_label_counts == b.vertex_label_counts
            assert a.edge_label_counts == b.edge_label_counts
            assert a.degrees_desc == b.degrees_desc
            assert a.search_order == b.search_order


class TestQueryEquivalence:
    def test_engine_answers_identical_after_reload(
        self, built_mapping, saved_path, small_chemical_queries
    ):
        restored = load_index(saved_path)
        before = built_mapping.query_engine()
        after = restored.query_engine()
        for q in small_chemical_queries:
            a, b = before.query(q, 5), after.query(q, 5)
            assert a.ranking == b.ranking
            assert a.scores == b.scores

    def test_naive_path_also_identical(
        self, built_mapping, saved_path, small_chemical_queries
    ):
        restored = load_index(saved_path)
        before = MappedTopKEngine(built_mapping)
        after = MappedTopKEngine(restored)
        for q in small_chemical_queries:
            assert before.query(q, 5).ranking == after.query(q, 5).ranking

    def test_load_mapping_dispatches_v2(
        self, saved_path, small_chemical_queries
    ):
        via_persistence = load_mapping(saved_path)
        via_index = load_index(saved_path)
        for q in small_chemical_queries:
            assert (
                via_persistence.query_engine().query(q, 5).ranking
                == via_index.query_engine().query(q, 5).ranking
            )


class TestBackwardCompat:
    def test_v1_file_still_loads_with_rebuild_fallback(
        self, built_mapping, tmp_path, small_chemical_queries, monkeypatch
    ):
        path = tmp_path / "legacy.json"
        save_mapping_v1(built_mapping, path)
        assert json.loads(path.read_text())["format_version"] == 1
        restored = load_mapping(path)
        # No engine attached: the lattice is rebuilt on first use.
        assert restored._engine is None
        build = _Counter(FeatureLattice.build.__func__)
        monkeypatch.setattr(FeatureLattice, "build", classmethod(build))
        engine = restored.query_engine()
        assert build.calls == 1
        before = built_mapping.query_engine()
        for q in small_chemical_queries:
            assert before.query(q, 5).ranking == engine.query(q, 5).ranking

    def test_unknown_version_rejected(self, saved_path):
        payload = json.loads(saved_path.read_text())
        payload["format_version"] = 99
        saved_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_mapping(saved_path)
        with pytest.raises(ValueError):
            IndexArtifact.load(saved_path)

    def test_foreign_kind_rejected(self, saved_path):
        payload = json.loads(saved_path.read_text())
        payload["kind"] = "something-else-entirely"
        saved_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="artifact"):
            load_index(saved_path)


class TestCorruptArtifacts:
    @pytest.fixture()
    def payload(self, saved_path):
        return json.loads(saved_path.read_text())

    def _expect_corrupt(self, payload, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_index(path)

    def test_truncated_supports(self, payload, tmp_path):
        payload["feature_supports"] = payload["feature_supports"][:-1]
        self._expect_corrupt(payload, tmp_path)

    def test_truncated_vectors(self, payload, tmp_path):
        payload["database_vectors"] = payload["database_vectors"][:-1]
        self._expect_corrupt(payload, tmp_path)

    def test_missing_lattice(self, payload, tmp_path):
        del payload["lattice"]
        self._expect_corrupt(payload, tmp_path)

    def test_lattice_ancestor_out_of_range(self, payload, tmp_path):
        payload["lattice"]["ancestors"][0] = [999]
        self._expect_corrupt(payload, tmp_path)

    def test_lattice_order_not_a_permutation(self, payload, tmp_path):
        payload["lattice"]["order"][0] = payload["lattice"]["order"][-1]
        self._expect_corrupt(payload, tmp_path)

    def test_profile_count_mismatch(self, payload, tmp_path):
        payload["pattern_profiles"] = payload["pattern_profiles"][:-1]
        self._expect_corrupt(payload, tmp_path)

    def test_tampered_sq_norms(self, payload, tmp_path):
        payload["database_sq_norms"][0] += 1
        self._expect_corrupt(payload, tmp_path)

    def test_tampered_profile_search_order(self, payload, tmp_path):
        order = payload["pattern_profiles"][0]["search_order"]
        payload["pattern_profiles"][0]["search_order"] = [0] * len(order)
        if len(order) > 1:  # a zeroed order is only invalid for |V| > 1
            self._expect_corrupt(payload, tmp_path)

    def test_tampered_profile_counts(self, payload, tmp_path):
        entry = payload["pattern_profiles"][0]
        entry["vertex_label_counts"][0][1] += 5
        self._expect_corrupt(payload, tmp_path)

    def test_missing_label_codec(self, payload, tmp_path):
        del payload["label_codec"]
        self._expect_corrupt(payload, tmp_path)


class TestPivotEngines:
    def test_pivot_engine_lattice_projected_before_save(
        self, built_mapping, tmp_path, small_chemical_queries
    ):
        """An explicitly pivot-enabled engine must not leak pivots into
        the artifact: the persisted lattice covers selected positions
        only, and the reload answers identically."""
        from repro.query.engine import QueryEngine

        pivoted = QueryEngine(built_mapping, use_pivots=True)
        built_mapping._engine = pivoted  # simulate a pivot deployment
        try:
            path = tmp_path / "pivot.json"
            save_index(built_mapping, path)
            restored = load_index(path)
            engine = restored.query_engine()
            assert len(engine.patterns) == built_mapping.dimensionality
            for q in small_chemical_queries:
                a = pivoted.query(q, 5)
                b = engine.query(q, 5)
                assert a.ranking == b.ranking and a.scores == b.scores
        finally:
            built_mapping.invalidate_caches()
