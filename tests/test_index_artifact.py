"""Round-trip, cold-start, mutation, and corruption tests for the
format-v3 index artifact.

The artifact's contract: reloading restores *everything* the online path
needs, so ``load_index(path).query_engine()`` performs **zero** VF2
calls — neither the pattern-vs-pattern lattice build nor any per-feature
matching — even when a delta journal has to be replayed.  Corrupted
files (truncated payload, bad checksum, missing codec, wrong lattice
shape, tampered journal) must raise their dedicated error, never
mis-rank silently.
"""

import json

import numpy as np
import pytest

import repro.query.engine as engine_mod
from repro.core.mapping import build_mapping
from repro.core.persistence import load_mapping, save_mapping, save_mapping_v1
from repro.index import (
    IndexArtifact,
    compact_index,
    journal_path,
    load_index,
    payload_path,
    save_index,
    save_index_v2,
)
from repro.query.engine import FeatureLattice
from repro.query.topk import MappedTopKEngine
from repro.utils.errors import (
    ArtifactCorruptError,
    ChecksumError,
    CodecMissingError,
    FormatVersionError,
    JournalError,
    LatticeShapeError,
    PayloadMissingError,
)


@pytest.fixture(scope="module")
def built_mapping(small_chemical_db):
    return build_mapping(
        small_chemical_db, num_features=8, min_support=0.2, max_pattern_edges=3
    )


@pytest.fixture()
def saved_path(built_mapping, tmp_path):
    path = tmp_path / "index.json"
    save_index(built_mapping, path)
    built_mapping.artifact_ref = None  # keep the module fixture pristine
    built_mapping.journal_seq = 0
    return path


class _Counter:
    def __init__(self, func):
        self.func = func
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        return self.func(*args, **kwargs)


def _rewrite_arrays(path, mutate):
    """Mutate the npz payload and re-stamp the manifest checksum."""
    import hashlib
    import io

    with np.load(payload_path(path)) as npz:
        arrays = {name: npz[name].copy() for name in npz.files}
    mutate(arrays)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    data = buffer.getvalue()
    payload_path(path).write_bytes(data)
    manifest = json.loads(path.read_text())
    manifest["payload"]["sha256"] = hashlib.sha256(data).hexdigest()
    manifest["payload"]["arrays"] = {
        name: {"shape": list(array.shape), "dtype": str(array.dtype)}
        for name, array in arrays.items()
    }
    path.write_text(json.dumps(manifest))


class TestColdStart:
    def test_reload_builds_engine_with_zero_vf2_calls(
        self, saved_path, monkeypatch
    ):
        """The acceptance criterion, counter-enforced."""
        is_subgraph = _Counter(engine_mod.is_subgraph)
        lattice_build = _Counter(FeatureLattice.build.__func__)
        monkeypatch.setattr(engine_mod, "is_subgraph", is_subgraph)
        monkeypatch.setattr(
            FeatureLattice, "build", classmethod(lattice_build)
        )
        mapping = load_index(saved_path)
        engine = mapping.query_engine()
        assert engine is not None
        assert is_subgraph.calls == 0
        assert lattice_build.calls == 0

    def test_reload_with_journal_still_zero_vf2(
        self, saved_path, small_chemical_queries, monkeypatch
    ):
        """Journal replay is pure array work — no VF2, no lattice build."""
        mapping = load_index(saved_path)
        mapping.add_graphs(small_chemical_queries[:2])
        mapping.remove_graphs([0])
        save_index(mapping, saved_path)
        assert journal_path(saved_path).exists()

        is_subgraph = _Counter(engine_mod.is_subgraph)
        lattice_build = _Counter(FeatureLattice.build.__func__)
        monkeypatch.setattr(engine_mod, "is_subgraph", is_subgraph)
        monkeypatch.setattr(
            FeatureLattice, "build", classmethod(lattice_build)
        )
        reloaded = load_index(saved_path)
        assert reloaded.query_engine() is not None
        assert reloaded.space.n == mapping.space.n
        assert is_subgraph.calls == 0
        assert lattice_build.calls == 0

    def test_reloaded_engine_is_preattached_and_memoised(self, saved_path):
        mapping = load_index(saved_path)
        assert mapping._engine is not None
        assert mapping.query_engine() is mapping._engine

    def test_invalidate_caches_forces_fresh_engine(
        self, saved_path, small_chemical_queries
    ):
        mapping = load_index(saved_path)
        warm = mapping.query_engine()
        before = [warm.query(q, 5).ranking for q in small_chemical_queries]
        mapping.invalidate_caches()
        rebuilt = mapping.query_engine()
        assert rebuilt is not warm
        after = [rebuilt.query(q, 5).ranking for q in small_chemical_queries]
        assert before == after

    def test_lattice_and_norms_round_trip(self, built_mapping, saved_path):
        original = built_mapping.query_engine()
        restored = load_index(saved_path).query_engine()
        assert restored.lattice.order == original.lattice.order
        assert restored.lattice.ancestors == original.lattice.ancestors
        assert restored.lattice.descendants == original.lattice.descendants
        assert np.array_equal(
            restored.mapping.database_sq_norms,
            built_mapping.database_sq_norms,
        )

    def test_profiles_round_trip(self, built_mapping, saved_path):
        original = built_mapping.query_engine()._pattern_profiles
        restored = load_index(saved_path).query_engine()._pattern_profiles
        for a, b in zip(original, restored):
            assert a.vertex_label_counts == b.vertex_label_counts
            assert a.edge_label_counts == b.edge_label_counts
            assert a.degrees_desc == b.degrees_desc
            assert a.search_order == b.search_order


class TestQueryEquivalence:
    def test_engine_answers_identical_after_reload(
        self, built_mapping, saved_path, small_chemical_queries
    ):
        restored = load_index(saved_path)
        before = built_mapping.query_engine()
        after = restored.query_engine()
        for q in small_chemical_queries:
            a, b = before.query(q, 5), after.query(q, 5)
            assert a.ranking == b.ranking
            assert a.scores == b.scores

    def test_naive_path_also_identical(
        self, built_mapping, saved_path, small_chemical_queries
    ):
        restored = load_index(saved_path)
        before = MappedTopKEngine(built_mapping)
        after = MappedTopKEngine(restored)
        for q in small_chemical_queries:
            assert before.query(q, 5).ranking == after.query(q, 5).ranking

    def test_load_mapping_dispatches_v3(
        self, saved_path, small_chemical_queries
    ):
        via_persistence = load_mapping(saved_path)
        via_index = load_index(saved_path)
        for q in small_chemical_queries:
            assert (
                via_persistence.query_engine().query(q, 5).ranking
                == via_index.query_engine().query(q, 5).ranking
            )


class TestDeltaJournal:
    def test_save_after_mutations_appends_deltas(
        self, saved_path, small_chemical_queries
    ):
        mapping = load_index(saved_path)
        payload_bytes = payload_path(saved_path).read_bytes()
        mapping.add_graphs(small_chemical_queries[:2])
        save_index(mapping, saved_path)
        # The binary base was not rewritten — only the journal grew.
        assert payload_path(saved_path).read_bytes() == payload_bytes
        assert len(journal_path(saved_path).read_text().splitlines()) == 1
        mapping.remove_graphs([1, 4])
        save_index(mapping, saved_path)
        assert payload_path(saved_path).read_bytes() == payload_bytes
        assert len(journal_path(saved_path).read_text().splitlines()) == 2
        assert mapping.journal_seq == 2
        assert mapping.mutation_log == []

    def test_journal_replay_round_trips(
        self, saved_path, small_chemical_queries
    ):
        mapping = load_index(saved_path)
        mapping.add_graphs(small_chemical_queries[:3])
        mapping.remove_graphs([0, 2])
        save_index(mapping, saved_path)
        reloaded = load_index(saved_path)
        assert reloaded.space.n == mapping.space.n
        a = mapping.query_engine().batch_query(small_chemical_queries, 5)
        b = reloaded.query_engine().batch_query(small_chemical_queries, 5)
        for x, y in zip(a, b):
            assert x.ranking == y.ranking and x.scores == y.scores

    def test_save_to_foreign_path_writes_full_base(
        self, saved_path, tmp_path, small_chemical_queries
    ):
        mapping = load_index(saved_path)
        mapping.add_graphs(small_chemical_queries[:1])
        other = tmp_path / "other.json"
        save_index(mapping, other)
        assert not journal_path(other).exists()
        assert load_index(other).space.n == mapping.space.n

    def test_diverged_journal_falls_back_to_full_write(
        self, saved_path, small_chemical_queries
    ):
        # Two mappings descend from the same base; the second save finds
        # a journal longer than it remembers and must rewrite the base.
        first = load_index(saved_path)
        second = load_index(saved_path)
        first.add_graphs(small_chemical_queries[:1])
        save_index(first, saved_path)
        second.add_graphs(small_chemical_queries[1:3])
        save_index(second, saved_path)
        assert not journal_path(saved_path).exists()  # fresh base
        assert load_index(saved_path).space.n == second.space.n

    def test_staleness_baseline_survives_compaction(
        self, saved_path, small_chemical_queries
    ):
        """Drift is measured against selection-time supports; compacting
        the journal must not silently reset it (or the stale flag)."""
        mapping = load_index(saved_path)
        n = mapping.space.n
        mapping.remove_graphs(range(n // 2, n))  # huge drift, stale flags
        assert mapping.stale
        drift = mapping.support_drift
        save_index(mapping, saved_path)
        compact_index(saved_path)
        reloaded = load_index(saved_path)
        assert reloaded.support_drift == pytest.approx(drift)
        assert reloaded.stale

    def test_corrupt_journal_repaired_by_next_save(
        self, saved_path, small_chemical_queries
    ):
        """A damaged journal blocks loads (by design) but must not block
        a save from a live mapping — the full-base rewrite repairs it."""
        mapping = load_index(saved_path)
        mapping.add_graphs(small_chemical_queries[:1])
        save_index(mapping, saved_path)
        with journal_path(saved_path).open("a") as handle:
            handle.write("garbage line\n")
        with pytest.raises(JournalError):
            load_index(saved_path)
        mapping.add_graphs(small_chemical_queries[1:2])
        save_index(mapping, saved_path)  # repairs: fresh full base
        assert not journal_path(saved_path).exists()
        reloaded = load_index(saved_path)
        assert reloaded.space.n == mapping.space.n

    def test_reselection_severs_artifact_lineage(
        self, saved_path, small_chemical_queries
    ):
        """A staleness-hook re-selection invalidates the on-disk base:
        the next save must write a full base, never append deltas whose
        replay would land on the old selection."""
        from repro.core.mapping import StalenessPolicy

        mapping = load_index(saved_path)

        def reselect(m):
            m.selected = list(range(m.space.m - 1))
            m.database_vectors = m.space.embed_database(m.selected)

        mapping.staleness_policy = StalenessPolicy(
            max_drift=0.0, on_stale=reselect
        )
        mapping.add_graphs(small_chemical_queries[:1])
        assert mapping.artifact_ref is None  # lineage severed
        save_index(mapping, saved_path)
        assert not journal_path(saved_path).exists()  # full base, no deltas
        reloaded = load_index(saved_path)
        assert reloaded.dimensionality == mapping.dimensionality
        a = mapping.query_engine().batch_query(small_chemical_queries, 5)
        b = reloaded.query_engine().batch_query(small_chemical_queries, 5)
        for x, y in zip(a, b):
            assert x.ranking == y.ranking and x.scores == y.scores

    def test_compact_folds_journal(self, saved_path, small_chemical_queries):
        mapping = load_index(saved_path)
        mapping.add_graphs(small_chemical_queries[:2])
        mapping.remove_graphs([3])
        save_index(mapping, saved_path)
        assert journal_path(saved_path).exists()
        compacted = compact_index(saved_path)
        assert not journal_path(saved_path).exists()
        reloaded = load_index(saved_path)
        a = mapping.query_engine().batch_query(small_chemical_queries, 5)
        for other in (compacted, reloaded):
            b = other.query_engine().batch_query(small_chemical_queries, 5)
            for x, y in zip(a, b):
                assert x.ranking == y.ranking and x.scores == y.scores


class TestBackwardCompat:
    def test_v1_file_still_loads_with_rebuild_fallback(
        self, built_mapping, tmp_path, small_chemical_queries, monkeypatch
    ):
        path = tmp_path / "legacy.json"
        save_mapping_v1(built_mapping, path)
        assert json.loads(path.read_text())["format_version"] == 1
        restored = load_mapping(path)
        # No engine attached: the lattice is rebuilt on first use.
        assert restored._engine is None
        build = _Counter(FeatureLattice.build.__func__)
        monkeypatch.setattr(FeatureLattice, "build", classmethod(build))
        engine = restored.query_engine()
        assert build.calls == 1
        before = built_mapping.query_engine()
        for q in small_chemical_queries:
            assert before.query(q, 5).ranking == engine.query(q, 5).ranking

    def test_v2_file_still_loads_cold_start_free(
        self, built_mapping, tmp_path, small_chemical_queries, monkeypatch
    ):
        path = tmp_path / "v2.json"
        save_index_v2(built_mapping, path)
        assert json.loads(path.read_text())["format_version"] == 2
        is_subgraph = _Counter(engine_mod.is_subgraph)
        monkeypatch.setattr(engine_mod, "is_subgraph", is_subgraph)
        restored = load_index(path)
        engine = restored.query_engine()
        assert is_subgraph.calls == 0
        before = built_mapping.query_engine()
        for q in small_chemical_queries:
            a, b = before.query(q, 5), engine.query(q, 5)
            assert a.ranking == b.ranking and a.scores == b.scores

    def test_v2_then_save_migrates_to_v3(
        self, built_mapping, tmp_path, small_chemical_queries
    ):
        path = tmp_path / "migrate.json"
        save_index_v2(built_mapping, path)
        mapping = load_index(path)
        assert mapping.artifact_ref is None
        mapping.add_graphs(small_chemical_queries[:1])
        save_index(mapping, path)  # full v3 write, not a delta
        manifest = json.loads(path.read_text())
        assert manifest["format_version"] == 3
        assert payload_path(path).exists()
        assert load_index(path).space.n == mapping.space.n

    def test_unknown_version_rejected(self, saved_path):
        payload = json.loads(saved_path.read_text())
        payload["format_version"] = 99
        saved_path.write_text(json.dumps(payload))
        with pytest.raises(FormatVersionError):
            load_mapping(saved_path)
        with pytest.raises(ValueError):
            IndexArtifact.load(saved_path)

    def test_foreign_kind_rejected(self, saved_path):
        payload = json.loads(saved_path.read_text())
        payload["kind"] = "something-else-entirely"
        saved_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="artifact"):
            load_index(saved_path)


class TestCorruptArtifacts:
    """Every corruption mode raises its dedicated error, loudly."""

    @pytest.fixture()
    def manifest(self, saved_path):
        return json.loads(saved_path.read_text())

    def _expect(self, saved_path, manifest, exc):
        saved_path.write_text(json.dumps(manifest))
        with pytest.raises(exc):
            load_index(saved_path)

    def test_truncated_payload(self, saved_path):
        data = payload_path(saved_path).read_bytes()
        payload_path(saved_path).write_bytes(data[: len(data) // 2])
        with pytest.raises(ChecksumError):
            load_index(saved_path)

    def test_bad_checksum_single_flipped_byte(self, saved_path):
        data = bytearray(payload_path(saved_path).read_bytes())
        data[-1] ^= 0xFF
        payload_path(saved_path).write_bytes(bytes(data))
        with pytest.raises(ChecksumError):
            load_index(saved_path)

    def test_missing_payload_file(self, saved_path):
        payload_path(saved_path).unlink()
        with pytest.raises(PayloadMissingError):
            load_index(saved_path)

    def test_missing_codec(self, saved_path, manifest):
        del manifest["label_codec"]
        self._expect(saved_path, manifest, CodecMissingError)

    def test_wrong_lattice_shape(self, saved_path, manifest):
        manifest["lattice"]["ancestors"] = manifest["lattice"]["ancestors"][
            :-1
        ]
        self._expect(saved_path, manifest, LatticeShapeError)

    def test_missing_lattice(self, saved_path, manifest):
        del manifest["lattice"]
        self._expect(saved_path, manifest, ArtifactCorruptError)

    def test_lattice_ancestor_out_of_range(self, saved_path, manifest):
        manifest["lattice"]["ancestors"][0] = [999]
        self._expect(saved_path, manifest, ArtifactCorruptError)

    def test_lattice_order_not_a_permutation(self, saved_path, manifest):
        manifest["lattice"]["order"][0] = manifest["lattice"]["order"][-1]
        self._expect(saved_path, manifest, ArtifactCorruptError)

    def test_truncated_supports(self, saved_path, manifest):
        manifest["feature_supports"] = manifest["feature_supports"][:-1]
        self._expect(saved_path, manifest, ArtifactCorruptError)

    def test_profile_count_mismatch(self, saved_path, manifest):
        manifest["pattern_profiles"] = manifest["pattern_profiles"][:-1]
        self._expect(saved_path, manifest, ArtifactCorruptError)

    def test_tampered_profile_search_order(self, saved_path, manifest):
        order = manifest["pattern_profiles"][0]["search_order"]
        manifest["pattern_profiles"][0]["search_order"] = [0] * len(order)
        if len(order) > 1:  # a zeroed order is only invalid for |V| > 1
            self._expect(saved_path, manifest, ValueError)

    def test_tampered_profile_counts(self, saved_path, manifest):
        entry = manifest["pattern_profiles"][0]
        entry["vertex_label_counts"][0][1] += 5
        self._expect(saved_path, manifest, ValueError)

    def test_truncated_vector_rows(self, saved_path):
        _rewrite_arrays(
            saved_path,
            lambda a: a.update(
                database_vectors=a["database_vectors"][:-1],
                database_sq_norms=a["database_sq_norms"][:-1],
            ),
        )
        with pytest.raises(ArtifactCorruptError):
            load_index(saved_path)

    def test_tampered_sq_norms_cross_check(self, saved_path):
        def bump(arrays):
            norms = arrays["database_sq_norms"].copy()
            norms[0] += 1
            arrays["database_sq_norms"] = norms

        # Checksum re-stamped, so only the vectors-vs-norms cross-check
        # can catch the inconsistency.
        _rewrite_arrays(saved_path, bump)
        with pytest.raises(ArtifactCorruptError):
            load_index(saved_path)

    def test_payload_array_missing(self, saved_path):
        _rewrite_arrays(
            saved_path, lambda a: a.pop("database_sq_norms")
        )
        manifest = json.loads(saved_path.read_text())
        assert "database_sq_norms" not in manifest["payload"]["arrays"]
        manifest["payload"]["arrays"]["database_sq_norms"] = {
            "shape": [manifest["database_size"]],
            "dtype": "int64",
        }
        saved_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactCorruptError):
            load_index(saved_path)

    def test_array_shape_disagrees_with_manifest(self, saved_path):
        manifest = json.loads(saved_path.read_text())
        manifest["payload"]["arrays"]["database_vectors"]["shape"][0] += 1
        saved_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactCorruptError):
            load_index(saved_path)


class TestCorruptJournal:
    @pytest.fixture()
    def journaled(self, saved_path, small_chemical_queries):
        mapping = load_index(saved_path)
        mapping.add_graphs(small_chemical_queries[:2])
        mapping.remove_graphs([1])
        save_index(mapping, saved_path)
        return saved_path

    def test_tampered_entry_fails_checksum(self, journaled):
        lines = journal_path(journaled).read_text().splitlines()
        entry = json.loads(lines[0])
        entry["vectors"][0][0] ^= 1
        lines[0] = json.dumps(entry)
        journal_path(journaled).write_text("\n".join(lines) + "\n")
        with pytest.raises(ChecksumError):
            load_index(journaled)

    def test_out_of_sequence_entry(self, journaled):
        lines = journal_path(journaled).read_text().splitlines()
        journal_path(journaled).write_text(lines[1] + "\n")
        with pytest.raises(JournalError):
            load_index(journaled)

    def test_garbage_line(self, journaled):
        with journal_path(journaled).open("a") as handle:
            handle.write("not json\n")
        with pytest.raises(JournalError):
            load_index(journaled)


class TestPivotEngines:
    def test_pivot_engine_lattice_projected_before_save(
        self, built_mapping, tmp_path, small_chemical_queries
    ):
        """An explicitly pivot-enabled engine must not leak pivots into
        the artifact: the persisted lattice covers selected positions
        only, and the reload answers identically."""
        from repro.query.engine import QueryEngine

        pivoted = QueryEngine(built_mapping, use_pivots=True)
        built_mapping._engine = pivoted  # simulate a pivot deployment
        try:
            path = tmp_path / "pivot.json"
            save_index(built_mapping, path)
            restored = load_index(path)
            engine = restored.query_engine()
            assert len(engine.patterns) == built_mapping.dimensionality
            for q in small_chemical_queries:
                a = pivoted.query(q, 5)
                b = engine.query(q, 5)
                assert a.ranking == b.ranking and a.scores == b.scores
        finally:
            built_mapping.invalidate_caches()
            built_mapping.artifact_ref = None
            built_mapping.journal_seq = 0
