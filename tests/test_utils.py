"""Tests for the utility modules (rng, timing, errors)."""

import numpy as np
import pytest

from repro.utils import GraphDimensionError, InvalidGraphError, Stopwatch, ensure_rng, timed
from repro.utils.errors import MiningError, QueryError, SelectionError
from repro.utils.rng import spawn


class TestEnsureRng:
    def test_int_seed_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_children_deterministic(self):
        kids_a = spawn(ensure_rng(7), 3)
        kids_b = spawn(ensure_rng(7), 3)
        for ka, kb in zip(kids_a, kids_b):
            assert ka.integers(0, 100) == kb.integers(0, 100)


class TestTiming:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw.measure("work"):
            sum(range(100))
        with sw.measure("work"):
            sum(range(100))
        assert sw.total("work") > 0.0
        assert sw.counts["work"] == 2
        assert sw.mean("work") == pytest.approx(sw.total("work") / 2)

    def test_unmeasured_name_zero(self):
        sw = Stopwatch()
        assert sw.total("nothing") == 0.0
        assert sw.mean("nothing") == 0.0

    def test_timed_returns_result_and_seconds(self):
        result, seconds = timed(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0.0


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [InvalidGraphError, MiningError, SelectionError, QueryError]
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, GraphDimensionError)
