"""Tests for the exact maximum common subgraph computation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import LabeledGraph, random_connected_graph
from repro.isomorphism import is_subgraph, mcs_edge_count, maximum_common_subgraph
from repro.isomorphism.product_graph import build_edge_product
from repro.utils.rng import ensure_rng


class TestBasicCases:
    def test_identical_graphs(self, triangle):
        assert mcs_edge_count(triangle, triangle) == 3

    def test_structural_copy(self, triangle):
        assert mcs_edge_count(triangle, triangle.copy()) == 3

    def test_subgraph_relation(self, triangle, path3):
        # path a-a-b ⊆ triangle a-a-b, so MCS = the path (2 edges)
        assert mcs_edge_count(path3, triangle) == 2

    def test_disjoint_labels(self):
        a = LabeledGraph(["a", "a"], [(0, 1, "x")])
        b = LabeledGraph(["z", "z"], [(0, 1, "x")])
        assert mcs_edge_count(a, b) == 0

    def test_edge_label_mismatch(self):
        a = LabeledGraph(["a", "a"], [(0, 1, "x")])
        b = LabeledGraph(["a", "a"], [(0, 1, "y")])
        assert mcs_edge_count(a, b) == 0

    def test_empty_graph(self, triangle):
        assert mcs_edge_count(LabeledGraph(), triangle) == 0

    def test_symmetry(self, triangle, square_with_diagonal):
        assert mcs_edge_count(triangle, square_with_diagonal) == mcs_edge_count(
            square_with_diagonal, triangle
        )

    def test_single_shared_edge(self):
        a = LabeledGraph(["a", "b", "c"], [(0, 1, "x"), (1, 2, "y")])
        b = LabeledGraph(["a", "b", "z"], [(0, 1, "x"), (1, 2, "w")])
        assert mcs_edge_count(a, b) == 1

    def test_disconnected_common_subgraph_found(self):
        # Common subgraph is two disjoint edges; a connected-only MCS
        # would find just one.
        a = LabeledGraph(
            ["a", "a", "b", "b"], [(0, 1, "x"), (2, 3, "y"), (1, 2, "z")]
        )
        b = LabeledGraph(
            ["a", "a", "b", "b"], [(0, 1, "x"), (2, 3, "y"), (0, 3, "w")]
        )
        assert mcs_edge_count(a, b) == 2


class TestResultStructure:
    def test_mapping_is_injective_and_label_preserving(self, small_chemical_db):
        g1, g2 = small_chemical_db[0], small_chemical_db[1]
        result = maximum_common_subgraph(g1, g2)
        values = list(result.vertex_mapping.values())
        assert len(values) == len(set(values))
        for u, v in result.vertex_mapping.items():
            assert g1.vertex_label(u) == g2.vertex_label(v)

    def test_edge_pairs_consistent_with_mapping(self, small_chemical_db):
        g1, g2 = small_chemical_db[2], small_chemical_db[3]
        result = maximum_common_subgraph(g1, g2)
        edges1 = list(g1.edges())
        edges2 = list(g2.edges())
        for i, j in result.edge_pairs:
            e1, e2 = edges1[i], edges2[j]
            assert e1.label == e2.label
            image = {result.vertex_mapping[e1.u], result.vertex_mapping[e1.v]}
            assert image == {e2.u, e2.v}

    def test_common_subgraph_embeds_in_both(self, small_chemical_db):
        g1, g2 = small_chemical_db[4], small_chemical_db[5]
        result = maximum_common_subgraph(g1, g2)
        edges1 = list(g1.edges())
        common = g1.edge_subgraph([edges1[i] for i, _ in result.edge_pairs])
        assert is_subgraph(common, g1)
        assert is_subgraph(common, g2)


class TestProductGraph:
    def test_product_empty_for_disjoint_labels(self):
        a = LabeledGraph(["a", "a"], [(0, 1, "x")])
        b = LabeledGraph(["z", "z"], [(0, 1, "x")])
        vertices, adj = build_edge_product(a, b)
        assert vertices == []
        assert adj == []

    def test_product_vertex_count_single_edge(self):
        # a-b edge vs a-b edge: one orientation matches labels.
        a = LabeledGraph(["a", "b"], [(0, 1, "x")])
        b = LabeledGraph(["a", "b"], [(0, 1, "x")])
        vertices, _adj = build_edge_product(a, b)
        assert len(vertices) == 1

    def test_product_both_orientations_for_equal_labels(self):
        a = LabeledGraph(["a", "a"], [(0, 1, "x")])
        b = LabeledGraph(["a", "a"], [(0, 1, "x")])
        vertices, _adj = build_edge_product(a, b)
        assert len(vertices) == 2


def _brute_force_mcs(g1: LabeledGraph, g2: LabeledGraph) -> int:
    """Exponential reference: try all partial injective vertex mappings."""
    from itertools import permutations

    best = 0
    n1, n2 = g1.num_vertices, g2.num_vertices
    verts2 = list(range(n2)) + [None] * n1  # None = unmapped
    seen = set()
    for image in permutations(verts2, n1):
        real = tuple((u, v) for u, v in enumerate(image) if v is not None)
        if real in seen:
            continue
        seen.add(real)
        if any(g1.vertex_label(u) != g2.vertex_label(v) for u, v in real):
            continue
        mapping = dict(real)
        count = 0
        for e in g1.edges():
            if e.u in mapping and e.v in mapping:
                tu, tv = mapping[e.u], mapping[e.v]
                if g2.has_edge(tu, tv) and g2.edge_label(tu, tv) == e.label:
                    count += 1
        best = max(best, count)
    return best


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_mcs_agrees_with_brute_force(seed):
    """Property: the clique-based MCS equals the brute-force optimum."""
    rng = ensure_rng(seed)
    v1 = int(rng.integers(2, 5))
    e1 = int(rng.integers(v1 - 1, v1 * (v1 - 1) // 2 + 1))
    v2 = int(rng.integers(2, 5))
    e2 = int(rng.integers(v2 - 1, v2 * (v2 - 1) // 2 + 1))
    g1 = random_connected_graph(v1, e1, num_vertex_labels=2, seed=rng)
    g2 = random_connected_graph(v2, e2, num_vertex_labels=2, seed=rng)
    assert mcs_edge_count(g1, g2) == _brute_force_mcs(g1, g2)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_mcs_upper_bounds(seed):
    """Property: MCS size never exceeds either graph's edge count."""
    rng = ensure_rng(seed)
    g1 = random_connected_graph(6, 8, num_vertex_labels=3, seed=rng)
    g2 = random_connected_graph(5, 6, num_vertex_labels=3, seed=rng)
    size = mcs_edge_count(g1, g2)
    assert 0 <= size <= min(g1.num_edges, g2.num_edges)
