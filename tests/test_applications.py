"""Tests for the clustering and containment applications."""

import numpy as np
import pytest

from repro.applications import ContainmentIndex, MappedKMedoids, adjusted_rand_index
from repro.features import FeatureSpace
from repro.graph import LabeledGraph
from repro.mining import mine_frequent_subgraphs
from repro.utils.errors import GraphDimensionError


class TestKMedoids:
    def _two_blob_distances(self):
        """Two well-separated blobs of 5 points each."""
        n = 10
        d = np.full((n, n), 10.0)
        for i in range(n):
            d[i, i] = 0.0
        for block in (range(5), range(5, 10)):
            for i in block:
                for j in block:
                    if i != j:
                        d[i, j] = 1.0
        return d

    def test_recovers_two_blobs(self):
        d = self._two_blob_distances()
        km = MappedKMedoids(2, seed=0).fit(d)
        labels = km.labels_
        assert len(set(labels[:5])) == 1
        assert len(set(labels[5:])) == 1
        assert labels[0] != labels[5]

    def test_cost_positive_and_finite(self):
        d = self._two_blob_distances()
        km = MappedKMedoids(2, seed=0).fit(d)
        assert 0 <= km.cost_ < np.inf

    def test_k_capped(self):
        d = np.zeros((3, 3))
        km = MappedKMedoids(10, seed=0).fit(d)
        assert len(km.medoids_) == 3

    def test_invalid_k(self):
        with pytest.raises(GraphDimensionError):
            MappedKMedoids(0)

    def test_nonsquare_rejected(self):
        with pytest.raises(GraphDimensionError):
            MappedKMedoids(2).fit(np.zeros((3, 4)))

    def test_deterministic_under_seed(self):
        d = self._two_blob_distances()
        a = MappedKMedoids(2, seed=5).fit(d)
        b = MappedKMedoids(2, seed=5).fit(d)
        assert (a.labels_ == b.labels_).all()


class TestAdjustedRandIndex:
    def test_identical_partitions(self):
        assert adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_degenerate_all_same(self):
        assert adjusted_rand_index([0, 0, 0], [0, 0, 0]) == 1.0

    def test_mismatched_length_rejected(self):
        with pytest.raises(GraphDimensionError):
            adjusted_rand_index([0, 1], [0])

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 3, size=300)
        b = rng.integers(0, 3, size=300)
        assert abs(adjusted_rand_index(a, b)) < 0.1

    def test_partial_agreement_between_zero_and_one(self):
        a = [0, 0, 0, 1, 1, 1]
        b = [0, 0, 1, 1, 1, 1]
        ari = adjusted_rand_index(a, b)
        assert 0.0 < ari < 1.0


class TestContainmentIndex:
    @pytest.fixture(scope="class")
    def index(self, small_chemical_db):
        feats = mine_frequent_subgraphs(small_chemical_db, min_support=0.2,
                                        max_edges=3)
        space = FeatureSpace(feats, len(small_chemical_db))
        return ContainmentIndex(space, small_chemical_db), space

    def test_filter_is_sound(self, index, small_chemical_db):
        """Filtered answers equal the full-scan answers."""
        idx, space = index
        # Use mined features themselves as patterns: answers known = support.
        for feat in space.features[:10]:
            result = idx.query(feat.graph)
            assert set(result.answers) == feat.support
            assert set(result.answers) == set(idx.query_scan(feat.graph))

    def test_filter_prunes(self, index, small_chemical_db):
        idx, space = index
        # A larger mined pattern should prune to (close to) its support.
        biggest = max(space.features, key=lambda f: f.num_edges)
        result = idx.query(biggest.graph)
        assert result.candidates_after_filter <= len(small_chemical_db)
        assert result.candidates_after_filter >= len(result.answers)
        assert result.features_used > 0

    def test_impossible_pattern(self, index):
        idx, _space = index
        pattern = LabeledGraph(["Zz", "Zz"], [(0, 1, "qq")])
        result = idx.query(pattern)
        assert result.answers == []

    def test_restricted_feature_subset(self, small_chemical_db):
        feats = mine_frequent_subgraphs(small_chemical_db, min_support=0.2,
                                        max_edges=3)
        space = FeatureSpace(feats, len(small_chemical_db))
        idx = ContainmentIndex(space, small_chemical_db, selected=[0, 1])
        result = idx.query(space.features[0].graph)
        assert set(result.answers) == space.features[0].support

    def test_size_mismatch_rejected(self, small_chemical_db):
        feats = mine_frequent_subgraphs(small_chemical_db, min_support=0.2,
                                        max_edges=3)
        space = FeatureSpace(feats, len(small_chemical_db))
        with pytest.raises(ValueError):
            ContainmentIndex(space, small_chemical_db[:-1])
