"""Round-trip tests for the gSpan and JSON graph formats."""

import pytest

from repro.graph import LabeledGraph
from repro.graph.io import (
    dumps_gspan,
    dumps_json,
    load_gspan,
    load_json,
    loads_gspan,
    loads_json,
    save_gspan,
    save_json,
)
from repro.utils.errors import InvalidGraphError


def _string_labeled(g: LabeledGraph) -> LabeledGraph:
    out = LabeledGraph([str(g.vertex_label(v)) for v in range(g.num_vertices)],
                       graph_id=str(g.graph_id) if g.graph_id is not None else None)
    for e in g.edges():
        out.add_edge(e.u, e.v, str(e.label))
    return out


class TestGSpanFormat:
    def test_round_trip(self, small_synthetic_db):
        original = [_string_labeled(g) for g in small_synthetic_db[:5]]
        parsed = loads_gspan(dumps_gspan(original))
        assert len(parsed) == 5
        for a, b in zip(original, parsed):
            assert a.num_vertices == b.num_vertices
            assert a.num_edges == b.num_edges
            assert sorted((e.u, e.v, e.label) for e in a.edges()) == sorted(
                (e.u, e.v, e.label) for e in b.edges()
            )

    def test_terminator_optional(self):
        text = "t # 0\nv 0 a\nv 1 b\ne 0 1 x\n"
        graphs = loads_gspan(text)
        assert len(graphs) == 1
        assert graphs[0].num_edges == 1

    def test_vertex_before_transaction_rejected(self):
        with pytest.raises(InvalidGraphError):
            loads_gspan("v 0 a\n")

    def test_non_consecutive_vertex_ids_rejected(self):
        with pytest.raises(InvalidGraphError):
            loads_gspan("t # 0\nv 1 a\n")

    def test_unknown_record_rejected(self):
        with pytest.raises(InvalidGraphError):
            loads_gspan("t # 0\nq nonsense\n")

    def test_file_round_trip(self, tmp_path, small_synthetic_db):
        original = [_string_labeled(g) for g in small_synthetic_db[:3]]
        path = tmp_path / "db.gspan"
        save_gspan(original, path)
        assert len(load_gspan(path)) == 3


class TestJSONFormat:
    def test_round_trip(self, small_chemical_db):
        parsed = loads_json(dumps_json(small_chemical_db[:4]))
        assert len(parsed) == 4
        for a, b in zip(small_chemical_db, parsed):
            assert a.num_vertices == b.num_vertices
            assert a.num_edges == b.num_edges

    def test_file_round_trip(self, tmp_path, small_chemical_db):
        path = tmp_path / "db.json"
        save_json(small_chemical_db[:2], path)
        assert len(load_json(path)) == 2

    def test_ids_preserved(self, small_chemical_db):
        parsed = loads_json(dumps_json(small_chemical_db[:2]))
        assert parsed[0].graph_id == str(small_chemical_db[0].graph_id)
