"""Tests for the DS-preserved mapping facade."""

import numpy as np
import pytest

from repro.core.mapping import (
    DSPreservedMapping,
    build_mapping,
    mapping_from_selection,
)
from repro.features import FeatureSpace
from repro.mining import mine_frequent_subgraphs
from repro.similarity import DissimilarityCache, pairwise_dissimilarity_matrix
from repro.utils.errors import SelectionError


@pytest.fixture(scope="module")
def setup(small_chemical_db):
    feats = mine_frequent_subgraphs(small_chemical_db, min_support=0.2,
                                    max_edges=3)
    space = FeatureSpace(feats, len(small_chemical_db))
    delta = pairwise_dissimilarity_matrix(small_chemical_db,
                                          DissimilarityCache())
    return space, small_chemical_db, delta


class TestBuildMapping:
    def test_one_call_build(self, small_chemical_db):
        mapping = build_mapping(
            small_chemical_db, num_features=6, min_support=0.2,
            max_pattern_edges=3,
        )
        assert isinstance(mapping, DSPreservedMapping)
        assert mapping.dimensionality == 6
        assert mapping.database_vectors.shape == (len(small_chemical_db), 6)

    def test_with_prebuilt_artifacts(self, setup):
        space, db, delta = setup
        mapping = build_mapping(db, num_features=5, space=space, delta=delta)
        assert mapping.dimensionality == 5

    def test_p_capped_at_universe(self, setup):
        space, db, delta = setup
        mapping = build_mapping(db, num_features=10_000, space=space, delta=delta)
        assert mapping.dimensionality == space.m


class TestMappingFromSelection:
    def test_empty_selection_rejected(self, setup):
        space, _db, _delta = setup
        with pytest.raises(SelectionError):
            mapping_from_selection(space, [])

    def test_vectors_match_incidence(self, setup):
        space, _db, _delta = setup
        sel = [0, 1, 2]
        mapping = mapping_from_selection(space, sel)
        assert (mapping.database_vectors == space.incidence[:, sel]).all()

    def test_selected_features_accessor(self, setup):
        space, _db, _delta = setup
        mapping = mapping_from_selection(space, [2, 0])
        feats = mapping.selected_features()
        assert feats[0] is space.features[2]
        assert feats[1] is space.features[0]


class TestQueryMapping:
    def test_database_graph_maps_to_own_row(self, setup):
        space, db, delta = setup
        mapping = build_mapping(db, num_features=6, space=space, delta=delta)
        vec = mapping.map_query(db[0])
        assert (vec == mapping.database_vectors[0]).all()

    def test_query_distance_zero_to_itself(self, setup):
        space, db, delta = setup
        mapping = build_mapping(db, num_features=6, space=space, delta=delta)
        vec = mapping.map_query(db[4])
        d = mapping.query_distances(vec[None, :])[0]
        assert d[4] == pytest.approx(0.0)

    def test_distances_in_unit_interval(self, setup):
        space, db, delta = setup
        mapping = build_mapping(db, num_features=6, space=space, delta=delta)
        d = mapping.database_distances()
        assert (d >= 0).all() and (d <= 1).all()

    def test_map_queries_stacks(self, setup):
        space, db, delta = setup
        mapping = build_mapping(db, num_features=6, space=space, delta=delta)
        stack = mapping.map_queries(db[:3])
        assert stack.shape == (3, 6)
