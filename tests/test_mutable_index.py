"""The mutable-index acceptance tests.

The contract of the write path: ``add_graphs`` / ``remove_graphs``
followed by queries is **bit-identical** (rankings *and* scores, ties
included) to rebuilding the mapping from scratch on the mutated
database — while call counters on mining, DSPM, and the lattice build
prove that **no full rebuild occurred**, and the only VF2 spent is the
lattice-pruned embedding of the added graphs.
"""

import numpy as np
import pytest

import repro.core.mapping as mapping_mod
import repro.query.engine as engine_mod
from repro.core.dspm import DSPM
from repro.core.dspmap import DSPMap
from repro.core.mapping import StalenessPolicy, mapping_from_selection
from repro.datasets import synthetic_database, synthetic_query_set
from repro.features.binary_matrix import FeatureSpace
from repro.isomorphism.vf2 import is_subgraph
from repro.mining import mine_frequent_subgraphs
from repro.mining.gspan import FrequentSubgraph
from repro.query.bench import variance_selection
from repro.query.engine import FeatureLattice
from repro.utils.errors import SelectionError


@pytest.fixture(scope="module")
def materials():
    """Raw, never-mutated inputs: graphs, queries, mined features."""
    db = synthetic_database(40, avg_edges=16, density=0.3, num_labels=5, seed=3)
    extra = synthetic_query_set(
        8, avg_edges=16, density=0.3, num_labels=5, seed=41
    )
    queries = synthetic_query_set(
        25, avg_edges=16, density=0.3, num_labels=5, seed=99
    )
    features = mine_frequent_subgraphs(db, min_support=0.2, max_edges=5)
    return db, extra, queries, features


def _fresh_mapping(materials, p):
    """A mapping over *copies* of the mined features (mutations are
    in-place, so every test starts from pristine supports)."""
    db, _extra, _queries, features = materials
    copies = [FrequentSubgraph(f.graph, set(f.support)) for f in features]
    space = FeatureSpace(copies, len(db))
    return mapping_from_selection(space, variance_selection(space, p))


def _scratch_rebuild(mapping, mutated_db):
    """The from-scratch reference: same selected patterns, supports
    recomputed on the mutated database by brute-force VF2."""
    features = [
        FrequentSubgraph(
            f.graph,
            {i for i, g in enumerate(mutated_db) if is_subgraph(f.graph, g)},
        )
        for f in mapping.selected_features()
    ]
    space = FeatureSpace(features, len(mutated_db))
    return mapping_from_selection(space, list(range(len(features))))


def _assert_identical(reference, batch):
    assert len(reference) == len(batch)
    for a, b in zip(reference, batch):
        assert a.ranking == b.ranking
        assert a.scores == b.scores


class _Counter:
    def __init__(self, func):
        self.func = func
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        return self.func(*args, **kwargs)


@pytest.fixture()
def rebuild_counters(monkeypatch):
    """Counters on every entry point a full rebuild would have to hit."""
    mine = _Counter(mapping_mod.mine_frequent_subgraphs)
    dspm_fit = _Counter(DSPM.fit)
    lattice_build = _Counter(FeatureLattice.build.__func__)
    monkeypatch.setattr(mapping_mod, "mine_frequent_subgraphs", mine)
    monkeypatch.setattr(DSPM, "fit", dspm_fit)
    monkeypatch.setattr(FeatureLattice, "build", classmethod(lattice_build))
    return mine, dspm_fit, lattice_build


class TestBitIdentityVsScratchRebuild:
    """The acceptance criterion, counter-enforced."""

    def test_add_then_remove_identical_no_rebuild(
        self, materials, rebuild_counters, monkeypatch
    ):
        db, extra, queries, _features = materials
        mapping = _fresh_mapping(materials, 15)
        mapping.query_engine()  # warm-up pays the lattice once, up front
        mine, dspm_fit, lattice_build = rebuild_counters
        mine.calls = dspm_fit.calls = lattice_build.calls = 0
        vf2 = _Counter(engine_mod.is_subgraph)
        monkeypatch.setattr(engine_mod, "is_subgraph", vf2)

        mapping.add_graphs(extra)
        assert vf2.calls <= mapping.dimensionality * len(extra)
        vf2_after_add = vf2.calls
        removed = [0, 5, 17, 33, 41]
        mapping.remove_graphs(removed)
        assert vf2.calls == vf2_after_add  # removal is VF2-free
        assert mine.calls == 0
        assert dspm_fit.calls == 0
        assert lattice_build.calls == 0

        mutated_db = [
            g
            for i, g in enumerate(list(db) + list(extra))
            if i not in set(removed)
        ]
        scratch = _scratch_rebuild(mapping, mutated_db)
        _assert_identical(
            scratch.query_engine().batch_query(queries, 7),
            mapping.query_engine().batch_query(queries, 7),
        )

    def test_add_only_identical(self, materials):
        db, extra, queries, _features = materials
        mapping = _fresh_mapping(materials, 15)
        mapping.add_graphs(extra)
        scratch = _scratch_rebuild(mapping, list(db) + list(extra))
        _assert_identical(
            scratch.query_engine().batch_query(queries, 5),
            mapping.query_engine().batch_query(queries, 5),
        )

    def test_remove_only_identical(self, materials):
        db, _extra, queries, _features = materials
        mapping = _fresh_mapping(materials, 15)
        removed = {1, 2, 30}
        mapping.remove_graphs(removed)
        scratch = _scratch_rebuild(
            mapping, [g for i, g in enumerate(db) if i not in removed]
        )
        _assert_identical(
            scratch.query_engine().batch_query(queries, 6),
            mapping.query_engine().batch_query(queries, 6),
        )

    def test_tie_heavy_mutation_identical(self, materials):
        """Three dimensions: almost every distance is tied — any drift
        in scores or tie order after mutation would surface here."""
        db, extra, queries, _features = materials
        mapping = _fresh_mapping(materials, 3)
        mapping.add_graphs(extra[:4])
        mapping.remove_graphs([2, 9])
        mutated_db = [
            g
            for i, g in enumerate(list(db) + list(extra[:4]))
            if i not in (2, 9)
        ]
        scratch = _scratch_rebuild(mapping, mutated_db)
        reference = scratch.query_engine().batch_query(queries, 9)
        distances = scratch.query_distances(reference.query_vectors)
        assert any((row == sorted(row)[8]).sum() > 1 for row in distances)
        _assert_identical(
            reference, mapping.query_engine().batch_query(queries, 9)
        )

    def test_interleaved_mutations_and_queries(self, materials):
        db, extra, queries, _features = materials
        mapping = _fresh_mapping(materials, 12)
        mapping.query_engine().batch_query(queries, 5)  # serve, then mutate
        mapping.add_graphs(extra[:3])
        mapping.query_engine().batch_query(queries, 5)
        mapping.remove_graphs([0])
        mapping.add_graphs(extra[3:6])
        mutated_db = [g for i, g in enumerate(db) if i != 0]
        mutated_db += list(extra[:6])
        # note: extra[:3] were appended before row 0 was removed, so the
        # final order is db-without-0, then extra[:3], then extra[3:6] —
        # which is exactly kept + all additions.
        scratch = _scratch_rebuild(mapping, mutated_db)
        _assert_identical(
            scratch.query_engine().batch_query(queries, 8),
            mapping.query_engine().batch_query(queries, 8),
        )


class TestStateConsistency:
    def test_norms_updated_incrementally_not_recomputed(self, materials):
        _db, extra, _queries, _features = materials
        mapping = _fresh_mapping(materials, 10)
        _ = mapping.database_sq_norms  # warm the cache
        mapping.add_graphs(extra[:3])
        assert "database_sq_norms" in mapping.__dict__
        assert np.array_equal(
            mapping.database_sq_norms,
            (mapping.database_vectors**2).sum(axis=1),
        )
        mapping.remove_graphs([4, 7])
        assert "database_sq_norms" in mapping.__dict__
        assert np.array_equal(
            mapping.database_sq_norms,
            (mapping.database_vectors**2).sum(axis=1),
        )

    def test_supports_and_incidence_stay_consistent(self, materials):
        _db, extra, _queries, _features = materials
        mapping = _fresh_mapping(materials, 10)
        mapping.add_graphs(extra)
        mapping.remove_graphs([0, 11, 29])
        space = mapping.space
        assert space.incidence.shape[0] == space.n
        assert np.array_equal(
            space.support_counts, space.incidence.sum(axis=0)
        )
        for r in mapping.selected:
            assert space.features[r].support == set(
                int(i) for i in np.flatnonzero(space.incidence[:, r])
            )
        # The selected columns of the incidence are the vectors.
        assert np.array_equal(
            space.embed_database(mapping.selected), mapping.database_vectors
        )

    def test_engine_rebuilt_but_lattice_preserved(self, materials):
        _db, extra, _queries, _features = materials
        mapping = _fresh_mapping(materials, 10)
        old_engine = mapping.query_engine()
        mapping.add_graphs(extra[:2])
        new_engine = mapping.query_engine()
        assert new_engine is not old_engine
        assert new_engine.lattice is old_engine.lattice
        assert new_engine._pattern_profiles == old_engine._pattern_profiles

    def test_added_rows_returned_and_logged(self, materials):
        _db, extra, _queries, _features = materials
        mapping = _fresh_mapping(materials, 10)
        rows = mapping.add_graphs(extra[:2])
        assert rows.shape == (2, 10)
        assert [m["op"] for m in mapping.mutation_log] == ["add"]
        assert mapping.mutation_log[0]["vectors"] == rows.astype(int).tolist()

    def test_empty_mutations_are_noops(self, materials):
        mapping = _fresh_mapping(materials, 10)
        before = mapping.database_vectors.copy()
        rows = mapping.add_graphs([])
        mapping.remove_graphs([])
        assert rows.shape == (0, 10)
        assert mapping.mutation_log == []
        assert np.array_equal(mapping.database_vectors, before)

    def test_remove_validation(self, materials):
        mapping = _fresh_mapping(materials, 10)
        n = mapping.space.n
        with pytest.raises(SelectionError):
            mapping.remove_graphs([n])
        with pytest.raises(SelectionError):
            mapping.remove_graphs([-1])
        with pytest.raises(SelectionError):
            mapping.remove_graphs(range(n))
        # Failed validation must leave the mapping untouched.
        assert mapping.space.n == n
        assert mapping.mutation_log == []


class TestStalenessPolicy:
    def test_drift_matches_manual_formula(self, materials):
        _db, extra, _queries, _features = materials
        mapping = _fresh_mapping(materials, 10)
        base = np.array(
            [len(mapping.space.features[r].support) for r in mapping.selected]
        )
        rows = mapping.add_graphs(extra[:4])
        expected = rows.sum() / base.sum()
        assert mapping.support_drift == pytest.approx(expected)

    def test_flag_policy_sets_stale(self, materials):
        _db, extra, _queries, _features = materials
        mapping = _fresh_mapping(materials, 10)
        mapping.staleness_policy = StalenessPolicy(max_drift=0.0)
        assert not mapping.stale
        mapping.add_graphs(extra[:1])
        assert mapping.stale
        mapping.reset_staleness()
        assert not mapping.stale
        assert mapping.support_drift == 0.0

    def test_error_policy_rejects_before_applying(self, materials):
        _db, extra, _queries, _features = materials
        mapping = _fresh_mapping(materials, 10)
        mapping.staleness_policy = StalenessPolicy(
            max_drift=0.0, on_stale="error"
        )
        n = mapping.space.n
        with pytest.raises(SelectionError, match="drift"):
            mapping.add_graphs(extra[:1])
        assert mapping.space.n == n  # nothing was applied
        assert mapping.mutation_log == []
        with pytest.raises(SelectionError, match="drift"):
            mapping.remove_graphs([0])
        assert mapping.space.n == n

    def test_callback_policy_triggers_reselection_hook(self, materials):
        _db, extra, _queries, _features = materials
        mapping = _fresh_mapping(materials, 10)
        fired = []
        mapping.staleness_policy = StalenessPolicy(
            max_drift=0.0, on_stale=fired.append
        )
        mapping.add_graphs(extra[:1])
        assert fired == [mapping]  # invoked with the mutated mapping
        assert not mapping.stale  # baseline auto-reset after the hook
        assert mapping.support_drift == 0.0
        mapping.add_graphs(extra[1:2])
        assert len(fired) == 2

    def test_below_threshold_no_trigger(self, materials):
        _db, extra, _queries, _features = materials
        mapping = _fresh_mapping(materials, 10)
        fired = []
        mapping.staleness_policy = StalenessPolicy(
            max_drift=10.0, on_stale=fired.append
        )
        mapping.add_graphs(extra)
        assert fired == []
        assert not mapping.stale

    def test_invalid_policy_rejected(self):
        with pytest.raises(SelectionError):
            StalenessPolicy(on_stale="explode")
        with pytest.raises(SelectionError):
            StalenessPolicy(max_drift=-1.0)


class TestDSPMapPartitionTracking:
    @pytest.fixture()
    def fitted(self, materials):
        db, _extra, _queries, features = materials
        copies = [FrequentSubgraph(f.graph, set(f.support)) for f in features]
        space = FeatureSpace(copies, len(db))
        incidence = space.incidence.astype(float)

        def hamming(i: int, j: int) -> float:
            return float(np.abs(incidence[i] - incidence[j]).sum())

        solver = DSPMap(10, partition_size=12, seed=0)
        solver.fit(space, db, delta_fn=hamming)
        mapping = mapping_from_selection(space, variance_selection(space, 15))
        return solver, mapping

    @staticmethod
    def _is_partition(blocks, n):
        flat = sorted(int(i) for b in blocks for i in b)
        return flat == list(range(n))

    def test_remove_tracks_membership(self, fitted):
        solver, mapping = fitted
        assert len(solver.partitions_) > 1
        mapping.remove_graphs([0, 13, 27])
        solver.remove_from_partitions([0, 13, 27])
        assert self._is_partition(solver.partitions_, mapping.space.n)

    def test_add_assigns_to_nearest_block(self, materials, fitted):
        _db, extra, _queries, _features = materials
        solver, mapping = fitted
        before_n = mapping.space.n
        mapping.add_graphs(extra[:3])
        new_ids = range(before_n, before_n + 3)
        choices = solver.assign_to_partitions(mapping.space, new_ids)
        assert len(choices) == 3
        assert all(0 <= c < len(solver.partitions_) for c in choices)
        assert self._is_partition(solver.partitions_, mapping.space.n)

    def test_partition_shards_still_serve_exactly(self, materials, fitted):
        _db, extra, queries, _features = materials
        solver, mapping = fitted
        mapping.remove_graphs([5, 6])
        solver.remove_from_partitions([5, 6])
        before_n = mapping.space.n
        mapping.add_graphs(extra[:2])
        solver.assign_to_partitions(
            mapping.space, range(before_n, before_n + 2)
        )
        reference = mapping.query_engine().batch_query(queries, 6)
        with mapping.query_service(shards=solver.partitions_) as service:
            _assert_identical(reference, service.batch_query(queries, 6))

    def test_update_before_fit_rejected(self, materials):
        solver = DSPMap(5)
        mapping = _fresh_mapping(materials, 5)
        with pytest.raises(SelectionError):
            solver.remove_from_partitions([0])
        with pytest.raises(SelectionError):
            solver.assign_to_partitions(mapping.space, [0])

    def test_bad_assignments_rejected(self, fitted):
        solver, mapping = fitted
        with pytest.raises(SelectionError):
            solver.assign_to_partitions(mapping.space, [0])  # already there
        with pytest.raises(SelectionError):
            solver.assign_to_partitions(mapping.space, [mapping.space.n])
