"""Round-trip tests for mapping persistence (v3 artifact + legacy).

The format-v3 cold-start guarantees live in ``test_index_artifact.py``;
this module covers the stable ``save_mapping``/``load_mapping`` surface,
corruption detection, and the :class:`LabelCodec` — including the label
round-trip caveat v1 documented and v2 fixes, on both dataset families
(string-labeled chemical, integer-labeled synthetic).
"""

import json

import numpy as np
import pytest

from repro.core.mapping import build_mapping
from repro.core.persistence import (
    FORMAT_VERSION,
    LabelCodec,
    load_mapping,
    save_mapping,
)
from repro.datasets import synthetic_database, synthetic_query_set
from repro.graph.labeled_graph import LabeledGraph
from repro.query.topk import MappedTopKEngine


@pytest.fixture(scope="module")
def built_mapping(small_chemical_db):
    return build_mapping(
        small_chemical_db, num_features=6, min_support=0.2, max_pattern_edges=3
    )


@pytest.fixture(scope="module")
def synthetic_mapping():
    db = synthetic_database(25, avg_edges=14, density=0.3, num_labels=5, seed=3)
    return build_mapping(db, num_features=5, min_support=0.2,
                         max_pattern_edges=4)


class TestRoundTrip:
    def test_writes_current_format(self, built_mapping, tmp_path):
        path = tmp_path / "index.json"
        save_mapping(built_mapping, path)
        assert json.loads(path.read_text())["format_version"] == FORMAT_VERSION

    def test_vectors_preserved(self, built_mapping, tmp_path):
        path = tmp_path / "index.json"
        save_mapping(built_mapping, path)
        restored = load_mapping(path)
        assert (restored.database_vectors == built_mapping.database_vectors).all()
        assert restored.dimensionality == built_mapping.dimensionality

    def test_supports_preserved(self, built_mapping, tmp_path):
        path = tmp_path / "index.json"
        save_mapping(built_mapping, path)
        restored = load_mapping(path)
        original = built_mapping.selected_features()
        for i, feat in enumerate(restored.selected_features()):
            assert feat.support == original[i].support

    def test_queries_identical_after_reload(
        self, built_mapping, tmp_path, small_chemical_queries
    ):
        path = tmp_path / "index.json"
        save_mapping(built_mapping, path)
        restored = load_mapping(path)
        before = MappedTopKEngine(built_mapping)
        after = MappedTopKEngine(restored)
        for q in small_chemical_queries:
            assert before.query(q, 5).ranking == after.query(q, 5).ranking

    def test_version_check(self, built_mapping, tmp_path):
        path = tmp_path / "index.json"
        save_mapping(built_mapping, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_mapping(path)

    def test_corrupt_supports_detected(self, built_mapping, tmp_path):
        path = tmp_path / "index.json"
        save_mapping(built_mapping, path)
        payload = json.loads(path.read_text())
        payload["feature_supports"] = payload["feature_supports"][:-1]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_mapping(path)

    def test_corrupt_vectors_detected(self, built_mapping, tmp_path):
        from repro.index import payload_path

        path = tmp_path / "index.json"
        save_mapping(built_mapping, path)
        data = payload_path(path).read_bytes()
        payload_path(path).write_bytes(data[:-7])  # truncated payload
        with pytest.raises(ValueError):
            load_mapping(path)


class TestLabelRoundTrip:
    """The v1 caveat, fixed: labels reload with their original types."""

    def test_chemical_string_labels(self, built_mapping, tmp_path):
        path = tmp_path / "chem.json"
        save_mapping(built_mapping, path)
        restored = load_mapping(path)
        for before, after in zip(
            built_mapping.selected_features(), restored.selected_features()
        ):
            g0, g1 = before.graph, after.graph
            assert [g1.vertex_label(v) for v in range(g1.num_vertices)] == [
                g0.vertex_label(v) for v in range(g0.num_vertices)
            ]
            assert all(isinstance(g1.vertex_label(v), str)
                       for v in range(g1.num_vertices))

    def test_synthetic_integer_labels(self, synthetic_mapping, tmp_path):
        path = tmp_path / "syn.json"
        save_mapping(synthetic_mapping, path)
        restored = load_mapping(path)
        for before, after in zip(
            synthetic_mapping.selected_features(),
            restored.selected_features(),
        ):
            g0, g1 = before.graph, after.graph
            for v in range(g1.num_vertices):
                assert g1.vertex_label(v) == g0.vertex_label(v)
                assert isinstance(g1.vertex_label(v), int)
            for e0, e1 in zip(g0.edges(), g1.edges()):
                assert e1.label == e0.label
                assert type(e1.label) is type(e0.label)

    def test_synthetic_queries_match_after_reload(
        self, synthetic_mapping, tmp_path
    ):
        """The actual bug the codec fixes: integer-labeled queries must
        match reloaded integer-labeled features."""
        path = tmp_path / "syn.json"
        save_mapping(synthetic_mapping, path)
        restored = load_mapping(path)
        queries = synthetic_query_set(
            4, avg_edges=14, density=0.3, num_labels=5, seed=9
        )
        before = synthetic_mapping.query_engine()
        after = restored.query_engine()
        matched_any = False
        for q in queries:
            va, vb = before.embed(q), after.embed(q)
            assert np.array_equal(va, vb)
            matched_any = matched_any or va.sum() > 0
        assert matched_any, "workload must exercise actual feature matches"


class TestLabelCodec:
    def test_int_float_str_round_trip(self):
        g = LabeledGraph([1, 2.5, "x"], [(0, 1, 7), (1, 2, "bond")])
        codec = LabelCodec.for_graphs([g])
        decoded = codec.decode_graph(
            LabeledGraph(
                [str(g.vertex_label(v)) for v in range(3)],
                [(e.u, e.v, str(e.label)) for e in g.edges()],
            )
        )
        assert [decoded.vertex_label(v) for v in range(3)] == [1, 2.5, "x"]
        assert sorted(str(e.label) for e in decoded.edges()) == ["7", "bond"]
        assert any(isinstance(e.label, int) for e in decoded.edges())

    def test_colliding_text_forms_rejected(self):
        g = LabeledGraph([1, "1"], [(0, 1, "e")])
        with pytest.raises(ValueError):
            LabelCodec.for_graphs([g])

    def test_whitespace_labels_rejected_loudly(self):
        # gSpan text splits on whitespace; such labels would silently
        # truncate on reload, so saving must fail instead.
        g = LabeledGraph(["C l"], [])
        with pytest.raises(ValueError, match="whitespace"):
            LabelCodec.for_graphs([g])
        g2 = LabeledGraph(["C", "O"], [(0, 1, "double bond")])
        with pytest.raises(ValueError, match="whitespace"):
            LabelCodec.for_graphs([g2])

    def test_unsupported_label_type_rejected(self):
        g = LabeledGraph([("tuple", "label")], [])
        with pytest.raises(ValueError):
            LabelCodec.for_graphs([g])
        with pytest.raises(ValueError):
            LabelCodec.for_graphs([LabeledGraph([True], [])])

    def test_unknown_text_passes_through_as_string(self):
        codec = LabelCodec({"5": "int"})
        assert codec.decode("5") == 5
        assert codec.decode("unseen") == "unseen"

    def test_payload_round_trip(self):
        codec = LabelCodec.for_graphs(
            [LabeledGraph([3, "C"], [(0, 1, 2)])]
        )
        again = LabelCodec.from_payload(codec.to_payload())
        assert again.table == codec.table

    def test_bad_payload_tag_rejected(self):
        with pytest.raises(ValueError):
            LabelCodec({"x": "banana"})
