"""Round-trip tests for mapping persistence."""

import json

import numpy as np
import pytest

from repro.core.mapping import build_mapping
from repro.core.persistence import load_mapping, save_mapping
from repro.query.topk import MappedTopKEngine


@pytest.fixture(scope="module")
def built_mapping(small_chemical_db):
    return build_mapping(
        small_chemical_db, num_features=6, min_support=0.2, max_pattern_edges=3
    )


class TestRoundTrip:
    def test_vectors_preserved(self, built_mapping, tmp_path):
        path = tmp_path / "index.json"
        save_mapping(built_mapping, path)
        restored = load_mapping(path)
        assert (restored.database_vectors == built_mapping.database_vectors).all()
        assert restored.dimensionality == built_mapping.dimensionality

    def test_supports_preserved(self, built_mapping, tmp_path):
        path = tmp_path / "index.json"
        save_mapping(built_mapping, path)
        restored = load_mapping(path)
        original = built_mapping.selected_features()
        for i, feat in enumerate(restored.selected_features()):
            assert feat.support == original[i].support

    def test_queries_identical_after_reload(
        self, built_mapping, tmp_path, small_chemical_queries
    ):
        path = tmp_path / "index.json"
        save_mapping(built_mapping, path)
        restored = load_mapping(path)
        before = MappedTopKEngine(built_mapping)
        after = MappedTopKEngine(restored)
        for q in small_chemical_queries:
            assert before.query(q, 5).ranking == after.query(q, 5).ranking

    def test_version_check(self, built_mapping, tmp_path):
        path = tmp_path / "index.json"
        save_mapping(built_mapping, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_mapping(path)

    def test_corrupt_supports_detected(self, built_mapping, tmp_path):
        path = tmp_path / "index.json"
        save_mapping(built_mapping, path)
        payload = json.loads(path.read_text())
        payload["feature_supports"] = payload["feature_supports"][:-1]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_mapping(path)

    def test_corrupt_vectors_detected(self, built_mapping, tmp_path):
        path = tmp_path / "index.json"
        save_mapping(built_mapping, path)
        payload = json.loads(path.read_text())
        payload["database_vectors"] = payload["database_vectors"][:-1]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_mapping(path)
