"""Tests for the random graph generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import graphgen_database, random_connected_graph
from repro.graph.generators import _vertex_count_for


class TestRandomConnectedGraph:
    def test_exact_counts(self):
        g = random_connected_graph(8, 12, num_vertex_labels=3, seed=0)
        assert g.num_vertices == 8
        assert g.num_edges == 12

    def test_connected(self):
        for seed in range(5):
            g = random_connected_graph(10, 12, num_vertex_labels=4, seed=seed)
            assert g.is_connected()

    def test_tree_case(self):
        g = random_connected_graph(6, 5, num_vertex_labels=2, seed=3)
        assert g.num_edges == 5
        assert g.is_connected()

    def test_complete_graph_case(self):
        g = random_connected_graph(5, 10, num_vertex_labels=2, seed=4)
        assert g.num_edges == 10

    def test_too_few_edges_rejected(self):
        with pytest.raises(ValueError):
            random_connected_graph(5, 3, num_vertex_labels=2)

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            random_connected_graph(4, 7, num_vertex_labels=2)

    def test_deterministic_under_seed(self):
        a = random_connected_graph(8, 10, num_vertex_labels=3, seed=42)
        b = random_connected_graph(8, 10, num_vertex_labels=3, seed=42)
        assert a == b

    def test_labels_in_range(self):
        g = random_connected_graph(10, 12, num_vertex_labels=3,
                                   num_edge_labels=2, seed=5)
        assert all(0 <= g.vertex_label(v) < 3 for v in range(10))
        assert all(0 <= e.label < 2 for e in g.edges())

    def test_label_weights_respected(self):
        # weight fully on label 0
        g = random_connected_graph(
            12, 14, num_vertex_labels=3, seed=1, label_weights=[1.0, 0.0, 0.0]
        )
        assert all(g.vertex_label(v) == 0 for v in range(12))


class TestGraphGenDatabase:
    def test_size_and_determinism(self):
        a = graphgen_database(10, avg_edges=12, num_labels=5, density=0.25, seed=9)
        b = graphgen_database(10, avg_edges=12, num_labels=5, density=0.25, seed=9)
        assert len(a) == 10
        assert all(x == y for x, y in zip(a, b))

    def test_all_connected(self):
        for g in graphgen_database(15, avg_edges=10, num_labels=4, density=0.3, seed=2):
            assert g.is_connected()

    def test_edge_counts_near_average(self):
        db = graphgen_database(40, avg_edges=20, num_labels=5, density=0.2, seed=3)
        mean_edges = sum(g.num_edges for g in db) / len(db)
        assert 15 <= mean_edges <= 25

    def test_graph_ids_assigned(self):
        db = graphgen_database(3, avg_edges=8, num_labels=3, density=0.3, seed=1)
        assert [g.graph_id for g in db] == ["syn-0", "syn-1", "syn-2"]

    def test_invalid_density_rejected(self):
        with pytest.raises(ValueError):
            _vertex_count_for(10, 0.0)


@settings(max_examples=25, deadline=None)
@given(
    num_edges=st.integers(min_value=5, max_value=30),
    density=st.floats(min_value=0.05, max_value=0.9),
)
def test_vertex_count_always_feasible(num_edges, density):
    """Property: the derived vertex count admits a simple connected graph."""
    v = _vertex_count_for(num_edges, density)
    assert v - 1 <= num_edges <= v * (v - 1) // 2
