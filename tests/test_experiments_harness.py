"""Integration tests for the experiment harness (small, cache-friendly)."""

import numpy as np
import pytest

from repro.experiments.harness import (
    DSPMSelector,
    SCALES,
    Scale,
    build_space,
    cached_matrix,
    evaluate_selector,
    exact_topk_lists,
    get_scale,
    make_dataset,
    make_selectors,
    relative_to_benchmark,
)
from repro.similarity import DissimilarityCache, pairwise_dissimilarity_matrix


TINY = Scale(
    name="tiny",
    db_size=15,
    query_count=3,
    num_features=5,
    min_support=0.25,
    max_pattern_edges=3,
    top_ks=(3,),
    dspm_iterations=20,
)


class TestScales:
    def test_known_scales(self):
        assert get_scale("small").name == "small"
        assert get_scale("full").name == "full"

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_scales_are_consistent(self):
        for scale in SCALES.values():
            assert scale.query_count > 0
            assert scale.num_features > 0
            assert all(k > 0 for k in scale.top_ks)


class TestDatasets:
    def test_chemical_deterministic(self):
        a, qa = make_dataset("chemical", 8, 2, seed=1)
        b, qb = make_dataset("chemical", 8, 2, seed=1)
        assert all(x == y for x, y in zip(a, b))
        assert all(x == y for x, y in zip(qa, qb))

    def test_synthetic_kind(self):
        db, queries = make_dataset("synthetic", 6, 2, seed=1, num_labels=4)
        assert len(db) == 6 and len(queries) == 2

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_dataset("quantum", 5, 1, seed=0)


class TestCache:
    def test_cached_matrix_round_trip(self, tmp_path, monkeypatch):
        import repro.experiments.harness as harness

        monkeypatch.setattr(harness, "CACHE_DIR", tmp_path)
        calls = []

        def builder():
            calls.append(1)
            return np.eye(3)

        a = cached_matrix("t", ("x", 1), builder)
        b = cached_matrix("t", ("x", 1), builder)
        assert (a == b).all()
        assert len(calls) == 1  # second call served from disk

    def test_different_keys_different_files(self, tmp_path, monkeypatch):
        import repro.experiments.harness as harness

        monkeypatch.setattr(harness, "CACHE_DIR", tmp_path)
        a = cached_matrix("t", ("x", 1), lambda: np.zeros(2))
        b = cached_matrix("t", ("x", 2), lambda: np.ones(2))
        assert (a != b).any()


class TestEvaluation:
    @pytest.fixture(scope="class")
    def pieces(self):
        db, queries = make_dataset("chemical", TINY.db_size,
                                   TINY.query_count, seed=0)
        space = build_space(db, TINY)
        cache = DissimilarityCache()
        delta_db = pairwise_dissimilarity_matrix(db, cache)
        from repro.similarity import cross_dissimilarity_matrix

        delta_q = cross_dissimilarity_matrix(queries, db, cache)
        return db, queries, space, delta_db, delta_q

    def test_exact_topk_lists(self, pieces):
        _db, queries, _space, _delta_db, delta_q = pieces
        lists = exact_topk_lists(delta_q, 3)
        assert len(lists) == len(queries)
        assert all(len(lst) == 3 for lst in lists)

    def test_evaluate_dspm_selector(self, pieces):
        db, queries, space, delta_db, delta_q = pieces
        ev = evaluate_selector(
            DSPMSelector(min(5, space.m), max_iterations=20),
            space, delta_db, queries, delta_q, (3,),
        )
        assert ev.name == "DSPM"
        assert 0.0 <= ev.precision[3] <= 1.0
        assert ev.indexing_seconds > 0.0

    def test_make_selectors_all(self):
        selectors = make_selectors(TINY, seed=0)
        names = [s.name for s in selectors]
        assert names == [
            "DSPM", "Original", "Sample", "SFS", "MICI", "MCFS", "UDFS", "NDFS",
        ]

    def test_make_selectors_subset(self):
        selectors = make_selectors(TINY, seed=0, include=("DSPM", "Sample"))
        assert [s.name for s in selectors] == ["DSPM", "Sample"]


class TestRelative:
    def test_relative_to_benchmark(self):
        values = {"A": {5: 0.5}, "B": {5: 1.0}}
        bench = {5: 0.5}
        rel = relative_to_benchmark(values, bench)
        assert rel["A"][5] == pytest.approx(1.0)
        assert rel["B"][5] == pytest.approx(2.0)

    def test_zero_benchmark(self):
        rel = relative_to_benchmark({"A": {5: 0.5}}, {5: 0.0})
        assert rel["A"][5] == 0.0
