"""Bit-identity and behaviour tests for the sharded query service.

The service's contract mirrors the engine's: *identical results at
serving scale*.  Every test therefore compares sharded/worker/cached
paths against the single-shard engine, including tie-heavy workloads
where merge-order bugs would surface.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.dspmap import DSPMap
from repro.core.mapping import mapping_from_selection
from repro.datasets import synthetic_database, synthetic_query_set
from repro.features.binary_matrix import FeatureSpace
from repro.mining import mine_frequent_subgraphs
from repro.query.bench import variance_selection
from repro.serving.service import QueryService, _structural_key
from repro.utils.errors import QueryError

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module")
def setup():
    db = synthetic_database(40, avg_edges=16, density=0.3, num_labels=5, seed=3)
    queries = synthetic_query_set(
        30, avg_edges=16, density=0.3, num_labels=5, seed=99
    )
    features = mine_frequent_subgraphs(db, min_support=0.2, max_edges=5)
    space = FeatureSpace(features, len(db))
    return db, queries, space


@pytest.fixture(scope="module")
def mapping(setup):
    _db, _queries, space = setup
    return mapping_from_selection(space, variance_selection(space, 20))


@pytest.fixture(scope="module")
def tie_heavy_mapping(setup):
    """Three dimensions only: almost every distance value is tied."""
    _db, _queries, space = setup
    return mapping_from_selection(space, variance_selection(space, 3))


def _assert_identical(reference, batch):
    assert len(reference) == len(batch)
    for a, b in zip(reference, batch):
        assert a.ranking == b.ranking
        assert a.scores == b.scores


class TestBitIdentity:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 40])
    def test_matches_engine_across_shard_counts(
        self, setup, mapping, n_shards
    ):
        _db, queries, _space = setup
        reference = mapping.query_engine().batch_query(queries, 7)
        with mapping.query_service(n_shards=n_shards) as service:
            _assert_identical(reference, service.batch_query(queries, 7))

    @pytest.mark.parametrize("n_shards", [1, 3, 6])
    def test_tie_heavy_rankings_identical(
        self, setup, tie_heavy_mapping, n_shards
    ):
        _db, queries, _space = setup
        engine = tie_heavy_mapping.query_engine()
        reference = engine.batch_query(queries, 9)
        # Sanity: the workload really is tie-heavy at the k-boundary.
        distances = tie_heavy_mapping.query_distances(
            reference.query_vectors
        )
        assert any(
            (row == sorted(row)[8]).sum() > 1 for row in distances
        )
        with tie_heavy_mapping.query_service(n_shards=n_shards) as service:
            _assert_identical(reference, service.batch_query(queries, 9))

    def test_permuted_custom_shards(self, setup, mapping):
        _db, queries, _space = setup
        rng = np.random.default_rng(0)
        perm = rng.permutation(mapping.database_vectors.shape[0])
        shards = [perm[:13], perm[13:20], perm[20:]]
        reference = mapping.query_engine().batch_query(queries, 5)
        with mapping.query_service(shards=shards) as service:
            _assert_identical(reference, service.batch_query(queries, 5))

    def test_dspmap_partition_shards(self, setup, mapping):
        """DSPMap's similarity blocks plug straight in as shards."""
        _db, queries, space = setup
        incidence = space.incidence.astype(float)

        def hamming(i: int, j: int) -> float:
            return float(np.abs(incidence[i] - incidence[j]).sum())

        solver = DSPMap(10, partition_size=12, seed=0)
        solver.fit(space, _db, delta_fn=hamming)
        assert len(solver.partitions_) > 1
        reference = mapping.query_engine().batch_query(queries, 6)
        with mapping.query_service(shards=solver.partitions_) as service:
            _assert_identical(reference, service.batch_query(queries, 6))

    @pytest.mark.parametrize(
        "mode",
        ["serial", "thread"] + (["process"] if HAS_FORK else []),
    )
    def test_embed_modes_identical(self, setup, mapping, mode):
        _db, queries, _space = setup
        reference = mapping.query_engine().batch_query(queries, 7)
        service = QueryService(
            mapping, n_shards=3, n_workers=2, embed_mode=mode
        )
        try:
            _assert_identical(reference, service.batch_query(queries, 7))
        finally:
            service.close()

    def test_vector_path_matches_engine(self, setup, mapping):
        _db, queries, _space = setup
        engine = mapping.query_engine()
        vectors = engine.embed_many(queries)
        reference = engine.batch_query(queries, 4)
        with mapping.query_service(n_shards=4) as service:
            results = service.batch_query_vectors(vectors, 4)
            _assert_identical(reference, results)

    def test_single_query_and_k_capping(self, setup, mapping):
        _db, queries, _space = setup
        n = mapping.database_vectors.shape[0]
        engine = mapping.query_engine()
        with mapping.query_service(n_shards=3) as service:
            a = engine.query(queries[0], n + 25)
            b = service.query(queries[0], n + 25)
            assert a.ranking == b.ranking and a.scores == b.scores
            assert len(b.ranking) == n
            with pytest.raises(QueryError):
                service.batch_query(queries, 0)


class TestShardValidation:
    def test_incomplete_partition_rejected(self, mapping):
        with pytest.raises(ValueError):
            QueryService(mapping, shards=[np.arange(10)])

    def test_overlapping_partition_rejected(self, mapping):
        n = mapping.database_vectors.shape[0]
        with pytest.raises(ValueError):
            QueryService(mapping, shards=[np.arange(n), np.array([0])])

    def test_zero_shards_rejected(self, mapping):
        with pytest.raises(ValueError):
            QueryService(mapping, n_shards=0)

    def test_bad_embed_mode_rejected(self, mapping):
        with pytest.raises(ValueError):
            QueryService(mapping, embed_mode="gpu")

    def test_shard_constant_folding_is_consistent(self, mapping):
        with mapping.query_service(n_shards=5) as service:
            p = mapping.dimensionality
            for shard in service.shards:
                assert len(shard.varying) + len(shard.constant) == p
                rows = mapping.database_vectors[shard.indices]
                if len(shard.constant):
                    assert (
                        rows[:, shard.constant] == shard.constant_values
                    ).all()
                assert np.array_equal(rows[:, shard.varying], shard.vectors)


class TestEmbeddingCache:
    def test_repeats_hit_the_cache(self, setup, mapping):
        _db, queries, _space = setup
        with mapping.query_service(n_shards=2) as service:
            first = service.batch_query(queries, 5)
            assert service.stats.cache_hits == 0
            assert service.stats.embedded_queries == len(queries)
            second = service.batch_query(queries, 5)
            assert service.stats.cache_hits == len(queries)
            assert service.stats.embedded_queries == len(queries)
            _assert_identical(first, second)

    def test_in_batch_duplicates_embed_once(self, setup, mapping):
        _db, queries, _space = setup
        batch = [queries[0], queries[1], queries[0], queries[0]]
        reference = mapping.query_engine().batch_query(batch, 5)
        with mapping.query_service(n_shards=2) as service:
            result = service.batch_query(batch, 5)
            assert service.stats.embedded_queries == 2
            assert service.stats.cache_hits == 2
            _assert_identical(reference, result)

    def test_clear_cache_re_embeds(self, setup, mapping):
        _db, queries, _space = setup
        with mapping.query_service(n_shards=2) as service:
            service.batch_query(queries[:4], 5)
            service.clear_cache()
            service.batch_query(queries[:4], 5)
            assert service.stats.embedded_queries == 8
            assert service.stats.cache_hits == 0

    def test_cache_disabled_still_identical(self, setup, mapping):
        _db, queries, _space = setup
        reference = mapping.query_engine().batch_query(queries, 5)
        with mapping.query_service(n_shards=2, cache_size=0) as service:
            service.batch_query(queries, 5)
            result = service.batch_query(queries, 5)
            assert service.stats.cache_hits == 0
            assert service.stats.embedded_queries == 2 * len(queries)
            _assert_identical(reference, result)

    def test_in_batch_duplicates_dedup_without_cache(self, setup, mapping):
        _db, queries, _space = setup
        batch = [queries[0], queries[0], queries[1], queries[0]]
        reference = mapping.query_engine().batch_query(batch, 5)
        with mapping.query_service(n_shards=2, cache_size=0) as service:
            result = service.batch_query(batch, 5)
            assert service.stats.embedded_queries == 2
            _assert_identical(reference, result)
            # ... but nothing persists across batches without a cache.
            service.batch_query(batch[:1], 5)
            assert service.stats.embedded_queries == 3

    def test_cache_eviction_respects_capacity(self, setup, mapping):
        _db, queries, _space = setup
        with mapping.query_service(n_shards=2, cache_size=3) as service:
            service.batch_query(queries[:10], 5)
            assert len(service._cache) == 3

    def test_structural_key_distinguishes_labels(self, setup):
        db, _queries, _space = setup
        assert _structural_key(db[0]) == _structural_key(db[0])
        assert _structural_key(db[0]) != _structural_key(db[1])


class TestLiveUpdates:
    """apply_update: bit-identical to a from-scratch engine, minimal
    shard churn, and an embedding cache that survives (φ(q) depends only
    on the selected patterns)."""

    @pytest.fixture()
    def mutable_mapping(self, setup):
        _db, _queries, space = setup
        from repro.features.binary_matrix import FeatureSpace
        from repro.mining.gspan import FrequentSubgraph

        copies = [
            FrequentSubgraph(f.graph, set(f.support)) for f in space.features
        ]
        fresh = FeatureSpace(copies, space.n)
        return mapping_from_selection(fresh, variance_selection(fresh, 20))

    @pytest.fixture()
    def extra(self):
        return synthetic_query_set(
            6, avg_edges=16, density=0.3, num_labels=5, seed=1234
        )

    def test_update_bit_identical_to_fresh_engine(
        self, setup, mutable_mapping, extra
    ):
        _db, queries, _space = setup
        with mutable_mapping.query_service(n_shards=4) as service:
            service.batch_query(queries, 7)
            service.apply_update(added=extra, removed=[0, 7, 33, 39])
            reference = mutable_mapping.query_engine().batch_query(queries, 7)
            _assert_identical(reference, service.batch_query(queries, 7))
            # ... and against a completely fresh service over the
            # mutated mapping, across a different shard count.
            with mutable_mapping.query_service(n_shards=3) as fresh:
                _assert_identical(reference, fresh.batch_query(queries, 7))

    def test_update_rebuilds_only_affected_shards(
        self, setup, mutable_mapping, extra
    ):
        _db, queries, _space = setup
        with mutable_mapping.query_service(n_shards=4) as service:
            old_ids = {id(s) for s in service.shards}
            # Rows 0 and 1 live in shard 0; adds land in one shard.
            service.apply_update(added=extra[:2], removed=[0, 1])
            assert service.stats.updates == 1
            assert service.stats.shards_rebuilt <= 2
            # Every slot holds a fresh object (renumbered or rebuilt),
            # keeping in-flight snapshots of the old list consistent.
            assert all(id(s) not in old_ids for s in service.shards)
            assert sum(s.num_rows for s in service.shards) == (
                mutable_mapping.database_vectors.shape[0]
            )
            reference = mutable_mapping.query_engine().batch_query(queries, 5)
            _assert_identical(reference, service.batch_query(queries, 5))

    def test_cache_survives_update(self, setup, mutable_mapping, extra):
        _db, queries, _space = setup
        with mutable_mapping.query_service(n_shards=2) as service:
            service.batch_query(queries, 5)
            hits_before = service.stats.cache_hits
            service.apply_update(added=extra[:2])
            service.batch_query(queries, 5)
            # Every query repeats: all served from the surviving cache.
            assert service.stats.cache_hits == hits_before + len(queries)
            reference = mutable_mapping.query_engine().batch_query(queries, 5)
            _assert_identical(reference, service.batch_query(queries, 5))

    def test_tie_heavy_update_identical(self, setup, extra):
        _db, queries, space = setup
        from repro.features.binary_matrix import FeatureSpace
        from repro.mining.gspan import FrequentSubgraph

        copies = [
            FrequentSubgraph(f.graph, set(f.support)) for f in space.features
        ]
        fresh = FeatureSpace(copies, space.n)
        tie_mapping = mapping_from_selection(
            fresh, variance_selection(fresh, 3)
        )
        with tie_mapping.query_service(n_shards=3) as service:
            service.apply_update(added=extra, removed=[4, 9])
            reference = tie_mapping.query_engine().batch_query(queries, 9)
            _assert_identical(reference, service.batch_query(queries, 9))

    def test_empty_update_is_noop(self, setup, mutable_mapping):
        with mutable_mapping.query_service(n_shards=2) as service:
            shards = list(service.shards)
            service.apply_update()
            assert len(service.shards) == len(shards)
            assert all(a is b for a, b in zip(service.shards, shards))
            assert service.stats.updates == 0

    def test_out_of_band_mutation_detected(self, setup, mutable_mapping, extra):
        with mutable_mapping.query_service(n_shards=2) as service:
            mutable_mapping.add_graphs(extra[:1])  # behind the service's back
            with pytest.raises(ValueError, match="out of sync"):
                service.apply_update(removed=[0])

    def test_rejected_add_after_applied_removal_stays_in_sync(
        self, setup, mutable_mapping, extra
    ):
        """If the add half trips the 'error' staleness gate after the
        removal already applied, the exception propagates but the
        service must finish the removal's shard swap — no permanent
        desync."""
        from repro.core.mapping import StalenessPolicy
        from repro.utils.errors import SelectionError

        _db, queries, _space = setup
        with mutable_mapping.query_service(n_shards=3) as service:
            # A gate loose enough for the removal, too tight for the add.
            removal_delta = mutable_mapping.database_vectors[[0]].sum()
            base = sum(
                len(mutable_mapping.space.features[r].support)
                for r in mutable_mapping.selected
            )
            mutable_mapping.staleness_policy = StalenessPolicy(
                max_drift=(removal_delta / base) + 1e-9, on_stale="error"
            )
            with pytest.raises(SelectionError, match="drift"):
                service.apply_update(added=extra, removed=[0])
            # Removal applied, add rejected; service still serves and
            # mutates consistently.
            n = mutable_mapping.database_vectors.shape[0]
            assert sum(s.num_rows for s in service.shards) == n
            reference = mutable_mapping.query_engine().batch_query(queries, 5)
            _assert_identical(reference, service.batch_query(queries, 5))
            mutable_mapping.staleness_policy = StalenessPolicy(max_drift=10.0)
            service.apply_update(added=extra[:1])  # no out-of-sync error
            assert sum(s.num_rows for s in service.shards) == n + 1

    def test_reselection_clears_cache_and_rebuilds_all(
        self, setup, mutable_mapping, extra
    ):
        from repro.core.mapping import StalenessPolicy
        from repro.query.bench import variance_selection as reselect

        _db, queries, _space = setup

        def reselection_hook(m):
            m.selected = list(reselect(m.space, 18))
            m.database_vectors = m.space.embed_database(m.selected)

        mutable_mapping.staleness_policy = StalenessPolicy(
            max_drift=0.0, on_stale=reselection_hook
        )
        with mutable_mapping.query_service(n_shards=3) as service:
            service.batch_query(queries, 5)
            assert len(service._cache) > 0
            service.apply_update(added=extra[:1])
            assert len(service._cache) == 0  # φ changed: cache invalid
            reference = mutable_mapping.query_engine().batch_query(queries, 5)
            _assert_identical(reference, service.batch_query(queries, 5))


class TestLifecycle:
    def test_close_is_idempotent(self, setup, mapping):
        _db, queries, _space = setup
        service = QueryService(
            mapping, n_shards=2, n_workers=2, embed_mode="thread"
        )
        service.batch_query(queries[:4], 3)
        assert service.stats.vf2_calls > 0  # thread mode reports stats too
        service.close()
        service.close()

    def test_close_safe_after_failed_pool_startup(
        self, setup, mapping, monkeypatch
    ):
        """Regression: a pool that never starts must not poison close().

        Double-close and ``__exit__`` after the startup exception both
        have to succeed, leaving no half-attached pool handle behind.
        """
        import repro.serving.service as service_mod

        _db, queries, _space = setup

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise RuntimeError("pool startup failed")

        monkeypatch.setattr(
            service_mod, "ProcessPoolExecutor", ExplodingPool
        )
        with pytest.raises(RuntimeError, match="pool startup"):
            with QueryService(
                mapping, n_shards=2, n_workers=2, embed_mode="process"
            ) as service:
                service.batch_query(queries[:4], 3)
        # __exit__ already ran close(); both of these must be no-ops.
        service.close()
        service.close()
        assert service._embed_pool is None
        assert service._shard_pool is None

    def test_close_safe_on_partially_constructed_instance(self):
        """close() on an instance whose __init__ never ran (the state a
        constructor exception leaves behind) must not raise."""
        service = QueryService.__new__(QueryService)
        service.close()
        service.close()

    def test_constructor_failure_then_close(self, mapping):
        import numpy as np

        try:
            service = QueryService(mapping, shards=[np.arange(10)])
        except ValueError:
            pass
        else:  # pragma: no cover - construction must fail
            service.close()
            pytest.fail("invalid shards must be rejected")

    def test_shard_timings_and_cache_misses_populated(self, setup, mapping):
        _db, queries, _space = setup
        with mapping.query_service(n_shards=3) as service:
            service.batch_query(queries[:8], 5)
            assert service.stats.cache_misses == 8
            assert service.stats.cache_hits == 0
            service.batch_query(queries[:8], 5)
            assert service.stats.cache_misses == 8
            assert service.stats.cache_hits == 8
            assert service.stats.shard_seconds > 0
            # Computed + bound-skipped blocks account for every shard of
            # both batches (skips depend on how the random data clusters).
            assert (
                service.stats.shard_tasks + service.stats.shards_skipped == 6
            )

    def test_cache_disabled_counts_no_misses(self, setup, mapping):
        _db, queries, _space = setup
        with mapping.query_service(n_shards=2, cache_size=0) as service:
            service.batch_query(queries[:5], 3)
            assert service.stats.cache_misses == 0
            assert service.stats.cache_hits == 0

    def test_empty_batch(self, mapping):
        with mapping.query_service(n_shards=2) as service:
            batch = service.batch_query([], 5)
            assert len(batch) == 0
            assert batch.query_vectors.shape == (0, mapping.dimensionality)

    def test_stats_and_timing_populated(self, setup, mapping):
        _db, queries, _space = setup
        with mapping.query_service(n_shards=2) as service:
            batch = service.batch_query(queries[:6], 5)
            assert service.stats.batches == 1
            assert service.stats.queries == 6
            assert service.stats.vf2_calls > 0
            assert batch.total_seconds == pytest.approx(
                batch.mapping_seconds + batch.search_seconds
            )
            assert service.stats.embed_seconds > 0
            assert service.stats.search_seconds > 0

    def test_service_uses_memoised_engine(self, mapping):
        with mapping.query_service(n_shards=2) as service:
            assert service.engine is mapping.query_engine()
