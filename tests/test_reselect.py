"""The re-selection half of the staleness loop.

:class:`~repro.core.reselect.Reselector` must close the loop the
:class:`~repro.core.mapping.StalenessPolicy` opens: re-run DSPM over
the *mutated* feature space, repair the universe incidence of rows that
entered through the incremental add path, and install the winning
selection through ``apply_selection`` — while reusing every offline
product that is still valid (memoised dissimilarities, the old
lattice's containment closure, surviving pattern profiles).
"""

import numpy as np
import pytest

from repro.core.mapping import mapping_from_selection
from repro.core.reselect import Reselector
from repro.datasets import synthetic_database
from repro.features.binary_matrix import FeatureSpace
from repro.graph.labeled_graph import LabeledGraph
from repro.mining import mine_frequent_subgraphs
from repro.mining.gspan import FrequentSubgraph
from repro.query.bench import variance_selection
from repro.query.engine import FeatureLattice
from repro.utils.errors import SelectionError

# Small graphs only: pairwise MCS over default synthetic parameters is
# intractable at unit-test timescales.
DB_KW = dict(avg_edges=8.0, density=0.3, num_labels=4)


# ---------------------------------------------------------------------
# vector-style fixtures: an under-selected clustered index (the drift
# scenario at unit scale, no VF2/mining noise)
# ---------------------------------------------------------------------
DIMS = 4          # dimensions per block
CLUSTERS = 3      # active clusters
PER_CLUSTER = 8
ACTIVE = CLUSTERS * DIMS          # active columns [0, ACTIVE)
EMERGING = ACTIVE + DIMS          # emerging columns [ACTIVE, EMERGING)
M = EMERGING + DIMS               # pad columns [EMERGING, M)


def _graph_for(vector, graph_id):
    labels = [f"dim{j}" for j in np.flatnonzero(vector)]
    return LabeledGraph(labels, graph_id=graph_id)


def _space_for(vectors):
    n, m = vectors.shape
    features = [
        FrequentSubgraph(
            LabeledGraph([f"dim{j}"], graph_id=f"dim{j}"),
            {int(i) for i in np.flatnonzero(vectors[:, j])},
        )
        for j in range(m)
    ]
    return FeatureSpace(features, n)


def _drift_setup(seed=0):
    """(mapping, initial graphs, churn graphs, final vectors).

    The initial selection spends ``DIMS`` of its capacity on dead pad
    columns; the churn rows populate the emerging block and overlap
    cluster 0, so selected supports drift and a re-selection has real
    capacity to reclaim.
    """
    rng = np.random.default_rng(seed)
    n = CLUSTERS * PER_CLUSTER
    initial = np.zeros((n, M), dtype=np.int8)
    for c in range(CLUSTERS):
        rows = slice(c * PER_CLUSTER, (c + 1) * PER_CLUSTER)
        cols = slice(c * DIMS, (c + 1) * DIMS)
        initial[rows, cols] = (rng.random((PER_CLUSTER, DIMS)) < 0.9)
    initial[initial.sum(axis=1) == 0, 0] = 1
    churn = np.zeros((PER_CLUSTER, M), dtype=np.int8)
    churn[:, ACTIVE:EMERGING] = rng.random((PER_CLUSTER, DIMS)) < 0.9
    churn[:, 0:DIMS] |= (rng.random((PER_CLUSTER, DIMS)) < 0.5).astype(
        np.int8
    )
    churn[churn.sum(axis=1) == 0, ACTIVE] = 1

    stale_selection = list(range(ACTIVE)) + list(range(EMERGING, M))
    mapping = mapping_from_selection(_space_for(initial), stale_selection)
    initial_graphs = [_graph_for(v, f"db{i}") for i, v in enumerate(initial)]
    churn_graphs = [_graph_for(v, f"new{i}") for i, v in enumerate(churn)]
    return mapping, initial_graphs, churn_graphs, np.vstack([initial, churn])


class TestClosedLoop:
    def test_drift_flag_then_reselect_heals(self):
        mapping, graphs, churn, final = _drift_setup()
        reselector = Reselector(graphs=graphs).attach(mapping, max_drift=0.1)
        mapping.query_engine()  # warm: the reuse paths need an old engine
        mapping.add_graphs(churn)
        assert mapping.stale, "churn this size must cross max_drift"

        assert reselector(mapping) is True
        assert not mapping.stale
        assert reselector.reselections == 1
        assert reselector.selections_changed == 1
        # The emerging block is worth more than the pads it displaces.
        selected = set(mapping.selected)
        assert set(range(ACTIVE, EMERGING)) <= selected
        assert not (set(range(EMERGING, M)) & selected)

    def test_add_path_rows_get_universe_repair(self):
        mapping, graphs, churn, final = _drift_setup()
        reselector = Reselector(graphs=graphs).attach(mapping, max_drift=0.1)
        mapping.add_graphs(churn)
        # The incremental add only embedded the *selected* columns; the
        # emerging block of the new rows is still unknown to the space.
        n_initial = len(graphs)
        assert not np.array_equal(
            mapping.space.incidence[n_initial:], final[n_initial:]
        )
        reselector(mapping)
        assert reselector.rows_repaired == len(churn)
        np.testing.assert_array_equal(mapping.space.incidence, final)
        # Feature support sets were patched alongside the matrix.
        for j in range(M):
            assert mapping.space.features[j].support == {
                int(i) for i in np.flatnonzero(final[:, j])
            }

    def test_healed_answers_match_scratch_index(self):
        mapping, graphs, churn, final = _drift_setup()
        reselector = Reselector(graphs=graphs).attach(mapping, max_drift=0.1)
        mapping.query_engine()
        mapping.add_graphs(churn)
        reselector(mapping)

        queries = [_graph_for(v, f"q{i}") for i, v in enumerate(final[::5])]
        got = mapping.query_engine().batch_query(queries, 5)
        scratch = mapping_from_selection(
            _space_for(final), list(mapping.selected)
        )
        truth = scratch.query_engine().batch_query(queries, 5)
        for a, b in zip(got, truth):
            assert a.ranking == b.ranking
            assert a.scores == b.scores

    def test_second_reselection_is_a_noop(self):
        mapping, graphs, churn, _final = _drift_setup()
        reselector = Reselector(graphs=graphs).attach(mapping, max_drift=0.1)
        mapping.add_graphs(churn)
        assert reselector(mapping) is True
        engine = mapping.peek_engine() or mapping.query_engine()
        # Same rows, same delta: DSPM is deterministic, so the second
        # pass must decide "no change" before touching the mapping.
        assert reselector(mapping) is False
        assert reselector.selections_changed == 1
        assert mapping.peek_engine() is engine

    def test_inline_policy_heals_inside_the_mutating_call(self):
        mapping, graphs, churn, _final = _drift_setup()
        reselector = Reselector(graphs=graphs).attach(
            mapping, max_drift=0.1, inline=True
        )
        mapping.query_engine()
        mapping.add_graphs(churn)
        # The add itself crossed the threshold and the policy hook ran:
        # no flag left behind, selection already healed.
        assert not mapping.stale
        assert reselector.selections_changed == 1
        assert set(range(ACTIVE, EMERGING)) <= set(mapping.selected)

    def test_removal_keeps_row_alignment(self):
        mapping, graphs, churn, final = _drift_setup()
        reselector = Reselector(graphs=graphs).attach(mapping, max_drift=0.1)
        mapping.add_graphs(churn)
        mapping.remove_graphs([0, 5, len(graphs)])  # two old + one new row
        reselector(mapping)
        survivors = np.delete(final, [0, 5, len(graphs)], axis=0)
        np.testing.assert_array_equal(mapping.space.incidence, survivors)


class TestOfflineReuse:
    def test_surviving_pairs_skip_vf2(self):
        """Containment among features surviving from the old selection
        is answered from the old lattice's closure, not VF2."""
        mapping, graphs, churn, _final = _drift_setup()
        reselector = Reselector(graphs=graphs).attach(mapping, max_drift=0.1)
        old_engine = mapping.query_engine()
        mapping.add_graphs(churn)
        assert reselector(mapping) is True

        new_engine = mapping.query_engine()
        assert new_engine is not old_engine
        scratch_checks = FeatureLattice.build(
            [f.graph for f in mapping.selected_features()]
        ).vf2_checks
        # The ACTIVE block survives the re-selection, so every pair of
        # survivors is answered from the old closure for free. Only
        # pairs touching the newly selected emerging dims pay VF2.
        survivors = len(set(mapping.selected) & set(range(ACTIVE)))
        saved = survivors * (survivors - 1) // 2
        assert survivors >= 2  # the scenario guarantees real overlap
        assert new_engine.lattice.vf2_checks == scratch_checks - saved

    def test_known_verdicts_bypass_vf2_entirely(self):
        db = synthetic_database(16, seed=6, **DB_KW)
        features = mine_frequent_subgraphs(db, min_support=0.2, max_edges=4)
        patterns = [f.graph for f in features[:8]]
        fresh = FeatureLattice.build(patterns)
        assert fresh.vf2_checks > 0
        ancestors = [set(a) for a in fresh.ancestors]
        known = {
            (a, b): a in ancestors[b]
            for a in range(len(patterns))
            for b in range(len(patterns))
            if a != b
        }
        reused = FeatureLattice.build(patterns, known=known)
        assert reused.vf2_checks == 0
        assert reused.ancestors == fresh.ancestors
        assert reused.descendants == fresh.descendants

    def test_dissimilarity_cache_only_pays_for_new_rows(self):
        db = synthetic_database(12, seed=7, **DB_KW)
        extra = synthetic_database(2, seed=8, **DB_KW)
        features = mine_frequent_subgraphs(db, min_support=0.2, max_edges=4)
        space = FeatureSpace(features, len(db))
        mapping = mapping_from_selection(
            space, variance_selection(space, min(6, space.m))
        )
        reselector = Reselector(
            num_features=min(6, space.m), graphs=db, delta="graphs"
        ).attach(mapping)
        reselector(mapping)
        pairs = len(db) * (len(db) - 1) // 2
        assert reselector.cache.misses == pairs

        mapping.add_graphs(extra)
        reselector(mapping)
        n2 = len(db) + len(extra)
        new_pairs = n2 * (n2 - 1) // 2 - pairs
        # Every surviving pair is a hit; only pairs touching the two
        # new rows pay MCS again.
        assert reselector.cache.hits == pairs
        assert reselector.cache.misses == pairs + new_pairs


class TestValidation:
    def test_unknown_delta_rejected(self):
        with pytest.raises(SelectionError, match="delta"):
            Reselector(delta="vibes")

    def test_graphs_mode_requires_graphs(self):
        with pytest.raises(SelectionError, match="graphs"):
            Reselector(delta="graphs")

    def test_attach_validates_graph_count(self):
        mapping, graphs, _churn, _final = _drift_setup()
        with pytest.raises(SelectionError, match="does not match"):
            Reselector(graphs=graphs[:-1]).attach(mapping)

    def test_graphs_delta_refuses_unknown_rows(self):
        """With no graphs for the mapping's rows, the graphs-mode
        delta cannot be computed — it must fail loudly, not silently
        re-rank over garbage."""
        mapping, _graphs, _churn, _final = _drift_setup()
        with pytest.raises(SelectionError):
            Reselector(delta="graphs", graphs=[]).attach(mapping)

    def test_apply_selection_noop_returns_false(self):
        mapping, _graphs, _churn, _final = _drift_setup()
        engine = mapping.query_engine()
        assert mapping.apply_selection(list(mapping.selected)) is False
        assert mapping.peek_engine() is engine  # nothing invalidated
