"""Tests for δ1/δ2 and the dissimilarity cache/matrices."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import LabeledGraph, random_connected_graph
from repro.similarity import (
    DissimilarityCache,
    cross_dissimilarity_matrix,
    delta1,
    delta2,
    dissimilarity,
    pairwise_dissimilarity_matrix,
)
from repro.utils.rng import ensure_rng


class TestDeltaFormulas:
    def test_identical_graph_zero(self, triangle):
        assert delta1(triangle, triangle) == 0.0
        assert delta2(triangle, triangle) == 0.0

    def test_disjoint_graphs_one(self):
        a = LabeledGraph(["a", "a"], [(0, 1, "x")])
        b = LabeledGraph(["z", "z"], [(0, 1, "x")])
        assert delta1(a, b) == 1.0
        assert delta2(a, b) == 1.0

    def test_known_values(self, triangle, path3):
        # mcs(path3, triangle) = 2 edges; |E| = 2 and 3.
        assert delta1(path3, triangle) == pytest.approx(1 - 2 / 3)
        assert delta2(path3, triangle) == pytest.approx(1 - 4 / 5)

    def test_empty_graphs(self):
        e = LabeledGraph()
        assert delta1(e, e) == 0.0
        assert delta2(e, e) == 0.0

    def test_explicit_mcs_short_circuit(self, triangle, path3):
        assert delta2(path3, triangle, mcs_edges=2) == pytest.approx(1 - 4 / 5)

    def test_dispatch(self, triangle, path3):
        assert dissimilarity("delta1", path3, triangle) == delta1(path3, triangle)
        assert dissimilarity("delta2", path3, triangle) == delta2(path3, triangle)
        with pytest.raises(ValueError):
            dissimilarity("delta9", path3, triangle)


class TestCache:
    def test_hit_counting(self, triangle, path3):
        cache = DissimilarityCache()
        cache(triangle, path3)
        assert cache.misses == 1
        cache(path3, triangle)  # symmetric key
        assert cache.hits == 1
        assert len(cache) == 1

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            DissimilarityCache("delta7")

    def test_values_match_direct(self, small_chemical_db):
        cache = DissimilarityCache("delta2")
        a, b = small_chemical_db[0], small_chemical_db[1]
        assert cache(a, b) == pytest.approx(delta2(a, b))


class TestMatrices:
    def test_pairwise_shape_and_symmetry(self, small_synthetic_db):
        db = small_synthetic_db[:6]
        matrix = pairwise_dissimilarity_matrix(db)
        assert matrix.shape == (6, 6)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_values_in_unit_interval(self, small_synthetic_db):
        matrix = pairwise_dissimilarity_matrix(small_synthetic_db[:6])
        assert (matrix >= 0).all() and (matrix <= 1).all()

    def test_cross_matrix(self, small_synthetic_db):
        queries = small_synthetic_db[:2]
        db = small_synthetic_db[2:7]
        matrix = cross_dissimilarity_matrix(queries, db)
        assert matrix.shape == (2, 5)
        assert (matrix >= 0).all() and (matrix <= 1).all()

    def test_shared_cache_reused(self, small_synthetic_db):
        cache = DissimilarityCache()
        db = small_synthetic_db[:5]
        pairwise_dissimilarity_matrix(db, cache)
        misses_before = cache.misses
        pairwise_dissimilarity_matrix(db, cache)
        assert cache.misses == misses_before  # second pass all hits


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_delta_properties(seed):
    """Property: symmetry, range, and δ2 ≥ δ1 · scaling relationships."""
    rng = ensure_rng(seed)
    g1 = random_connected_graph(5, 6, num_vertex_labels=2, seed=rng)
    g2 = random_connected_graph(4, 4, num_vertex_labels=2, seed=rng)
    d1 = delta1(g1, g2)
    d2 = delta2(g1, g2)
    assert 0.0 <= d1 <= 1.0
    assert 0.0 <= d2 <= 1.0
    assert delta1(g2, g1) == pytest.approx(d1)
    assert delta2(g2, g1) == pytest.approx(d2)
    # max-normalisation penalises at least as much as avg-normalisation
    assert d1 >= d2 - 1e-12
