"""Property-based tests (hypothesis) for ranking and batch serving.

Three invariants that no amount of example-based testing pins down as
well as a property search:

* :func:`rank_with_ties` agrees with the full-lexsort reference on any
  input — including dense tie plateaus, where the ``argpartition`` fast
  path has to reproduce (value, index) tie-breaking exactly;
* top-k is always a *prefix* of top-(k+1) (deterministic tie-breaking
  makes the stronger prefix property hold, not just set inclusion);
* batched serving is database-permutation invariant — renumbering the
  database never changes any returned distance, and never changes *who*
  is returned except through the documented (distance, index) tie rule —
  and duplicate-vector tie groups are never split arbitrarily across the
  k boundary (a member may only be excluded in favour of a lower-index
  duplicate, never a higher one).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.mapping import mapping_from_selection
from repro.datasets import synthetic_database, synthetic_query_set
from repro.features.binary_matrix import FeatureSpace
from repro.mining import mine_frequent_subgraphs
from repro.mining.gspan import FrequentSubgraph
from repro.query.bench import variance_selection
from repro.query.topk import rank_with_ties
from repro.serving.service import QueryService

# ----------------------------------------------------------------------
# rank_with_ties
# ----------------------------------------------------------------------
#: Floats drawn from a tiny alphabet produce dense tie plateaus; the
#: continuous draw covers the no-tie regime.  NaN is excluded: distances
#: are finite by construction (sqrt of a clamped non-negative).
_tie_heavy = st.lists(
    st.one_of(
        st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0]),
        st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=48,
)


def _reference(values, k):
    """The O(n log n) ground truth: full lexsort, (value, index) ties."""
    values = np.asarray(values, dtype=float)
    order = np.lexsort((np.arange(len(values)), values))[:k]
    return [int(i) for i in order], [float(values[i]) for i in order]


class TestRankWithTies:
    @given(values=_tie_heavy, k=st.integers(1, 48))
    @settings(max_examples=120, deadline=None)
    def test_matches_full_sort_reference(self, values, k):
        k = min(k, len(values))
        ranking, scores = rank_with_ties(np.asarray(values, dtype=float), k)
        ref_ranking, ref_scores = _reference(values, k)
        assert ranking == ref_ranking
        assert scores == ref_scores

    @given(values=_tie_heavy, k=st.integers(1, 47))
    @settings(max_examples=120, deadline=None)
    def test_topk_is_prefix_of_topk_plus_one(self, values, k):
        if k + 1 > len(values):
            k = max(len(values) - 1, 1)
        if k + 1 > len(values):
            return  # single-element array: nothing to compare
        arr = np.asarray(values, dtype=float)
        smaller, _ = rank_with_ties(arr, k)
        larger, _ = rank_with_ties(arr, k + 1)
        assert larger[:k] == smaller

    @given(values=_tie_heavy, k=st.integers(1, 48))
    @settings(max_examples=120, deadline=None)
    def test_tied_values_resolve_to_lowest_indices(self, values, k):
        """If j made the cut, every tied i < j made it too — the only
        legitimate way a tie group may straddle the k boundary."""
        k = min(k, len(values))
        arr = np.asarray(values, dtype=float)
        ranking, _scores = rank_with_ties(arr, k)
        chosen = set(ranking)
        for j in ranking:
            for i in range(j):
                if arr[i] == arr[j]:
                    assert i in chosen, (
                        f"index {j} ranked but tied lower index {i} was not"
                    )


# ----------------------------------------------------------------------
# batched serving under database permutation
# ----------------------------------------------------------------------
N_BASE = 16
N_DUPES = 3  # the last N_DUPES graphs duplicate the first N_DUPES


@pytest.fixture(scope="module")
def serving_materials():
    base = synthetic_database(
        N_BASE, avg_edges=14, density=0.3, num_labels=4, seed=11
    )
    db = base + base[:N_DUPES]  # guaranteed duplicate-vector tie groups
    queries = synthetic_query_set(
        8, avg_edges=14, density=0.3, num_labels=4, seed=77
    )
    features = mine_frequent_subgraphs(db, min_support=0.25, max_edges=4)
    space = FeatureSpace(features, len(db))
    selected = variance_selection(space, 10)
    mapping = mapping_from_selection(space, selected)
    qvecs = mapping.query_engine().embed_many(queries)
    # The duplicates really are duplicates in feature space.
    vectors = mapping.database_vectors
    for d in range(N_DUPES):
        assert (vectors[d] == vectors[N_BASE + d]).all()
    return space, selected, mapping, qvecs


def _permuted_mapping(space, selected, perm):
    """The same index over a renumbered database: new slot j holds old
    graph perm[j], so supports map through the inverse permutation."""
    n = space.n
    inverse = {int(old): j for j, old in enumerate(perm)}
    features = [
        FrequentSubgraph(f.graph, {inverse[i] for i in f.support})
        for f in space.features
    ]
    return mapping_from_selection(
        FeatureSpace(features, n), list(selected)
    )


class TestBatchPermutationInvariance:
    @given(
        perm=st.permutations(list(range(N_BASE + N_DUPES))),
        k=st.integers(1, N_BASE + N_DUPES),
        n_shards=st.integers(1, 4),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_database_permutation_invariance(
        self, serving_materials, perm, k, n_shards
    ):
        space, selected, mapping, qvecs = serving_materials
        permuted = _permuted_mapping(space, selected, perm)
        assert (
            permuted.database_vectors == mapping.database_vectors[perm]
        ).all()
        with QueryService(
            permuted.query_engine(), n_shards=n_shards, n_workers=0
        ) as service:
            results = service.batch_query_vectors(qvecs, k)
        for qi, result in enumerate(results):
            row = mapping.query_distances(qvecs[qi][None, :])[0]
            ref_ranking, ref_scores = rank_with_ties(row[perm], k)
            # Renumbering never changes a distance...
            assert result.scores == ref_scores
            # ...and who is returned follows the (distance, index) tie
            # rule in the *new* numbering, nothing else.
            assert result.ranking == ref_ranking

    @given(k=st.integers(1, N_BASE + N_DUPES - 1), n_shards=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_topk_prefix_through_the_sharded_path(
        self, serving_materials, k, n_shards
    ):
        _space, _selected, mapping, qvecs = serving_materials
        with QueryService(
            mapping.query_engine(), n_shards=n_shards, n_workers=0
        ) as service:
            smaller = service.batch_query_vectors(qvecs, k)
            larger = service.batch_query_vectors(qvecs, k + 1)
        for a, b in zip(smaller, larger):
            assert b.ranking[:k] == a.ranking
            assert b.scores[:k] == a.scores

    @given(
        k=st.integers(1, N_BASE + N_DUPES),
        n_shards=st.integers(1, 4),
    )
    @settings(max_examples=20, deadline=None)
    def test_duplicate_tie_groups_never_split_arbitrarily(
        self, serving_materials, k, n_shards
    ):
        """Duplicate database vectors are tied at every distance; the k
        boundary may only cut such a group by ascending index."""
        _space, _selected, mapping, qvecs = serving_materials
        vectors = mapping.database_vectors
        duplicate_pairs = [
            (d, N_BASE + d) for d in range(N_DUPES)
        ]
        with QueryService(
            mapping.query_engine(), n_shards=n_shards, n_workers=0
        ) as service:
            results = service.batch_query_vectors(qvecs, k)
        for result in results:
            chosen = set(result.ranking)
            for low, high in duplicate_pairs:
                if high in chosen:
                    assert low in chosen, (
                        f"duplicate {high} ranked but its lower-index twin "
                        f"{low} was cut at the k boundary"
                    )
