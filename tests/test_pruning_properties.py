"""Metamorphic property tests (hypothesis) for the shard-skip bounds.

The shard-skipping tier is only allowed to *remove work*, never to
change an answer.  That rests on two mathematical invariants no example
suite pins down as well as a property search:

* **soundness** — for any shard and any query vector, the combined
  centroid/radius + envelope lower bound never exceeds the true minimum
  distance from the query to any row of the shard (up to the documented
  slack, which is what the skip test actually charges against);
* **safety** — a shard that :func:`repro.query.pruning.prunable` would
  skip against the true k-th-best distance can never contain a true
  top-k member, ties included.

On top of the raw bound math, the service-level property: for random
databases, shard layouts, duplicates and tie plateaus, the default
exact policy answers bit-identically to the full scan, and approx mode
with ``nprobe = n_shards`` degenerates to exact.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.mapping import mapping_from_selection
from repro.features.binary_matrix import FeatureSpace
from repro.graph.labeled_graph import LabeledGraph
from repro.mining.gspan import FrequentSubgraph
from repro.query.pruning import (
    PRUNE_SLACK_ABS,
    PRUNE_SLACK_REL,
    SearchPolicy,
    ShardSummary,
    prunable,
    shard_lower_bounds,
)
from repro.query.topk import rank_with_ties
from repro.serving.service import QueryService


def _random_database(rng, n, p, duplicate_heavy):
    """Binary row vectors; optionally with many duplicated rows (ties)."""
    vectors = rng.integers(0, 2, size=(n, p)).astype(float)
    if duplicate_heavy and n > 2:
        # Copy rows around so tie groups straddle shard boundaries.
        for _ in range(n // 2):
            src, dst = rng.integers(0, n, size=2)
            vectors[dst] = vectors[src]
    return vectors


def _random_blocks(rng, n):
    """A random partition of 0..n-1 into 1..min(n, 5) shards."""
    n_shards = int(rng.integers(1, min(n, 5) + 1))
    assignment = rng.integers(0, n_shards, size=n)
    assignment[rng.permutation(n)[:n_shards]] = np.arange(n_shards)
    return [
        np.flatnonzero(assignment == s) for s in range(n_shards)
    ]


def _normalized_distances(queries, vectors, p):
    diff = queries[:, None, :] - vectors[None, :, :]
    sq = (diff**2).sum(axis=2)
    return np.sqrt(sq / p) if p else np.zeros(sq.shape)


class TestBoundSoundness:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 40),
        p=st.integers(1, 24),
        duplicate_heavy=st.booleans(),
        integer_queries=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_lower_bound_never_exceeds_true_minimum(
        self, seed, n, p, duplicate_heavy, integer_queries
    ):
        rng = np.random.default_rng(seed)
        vectors = _random_database(rng, n, p, duplicate_heavy)
        blocks = _random_blocks(rng, n)
        # Production queries are binary, but the bound must hold for
        # any real vector — stress both regimes.
        if integer_queries:
            queries = rng.integers(0, 3, size=(4, p)).astype(float)
        else:
            queries = rng.uniform(-1.0, 2.0, size=(4, p))
        summaries = [
            ShardSummary.from_vectors(vectors[block]) for block in blocks
        ]
        bounds, _centroid_d = shard_lower_bounds(queries, summaries, p)
        distances = _normalized_distances(queries, vectors, p)
        for qi in range(queries.shape[0]):
            for si, block in enumerate(blocks):
                true_min = float(distances[qi, block].min())
                bound = float(bounds[qi, si])
                assert bound <= true_min * (1 + PRUNE_SLACK_REL) + (
                    PRUNE_SLACK_ABS
                ), (
                    f"bound {bound!r} exceeds true minimum {true_min!r} "
                    f"past the skip slack (shard {si}, query {qi})"
                )

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_zero_dimensional_space_never_prunes(self, seed, n):
        """p == 0 mirrors the distance kernel: everything is at 0."""
        rng = np.random.default_rng(seed)
        vectors = np.zeros((n, 0))
        blocks = _random_blocks(rng, n)
        summaries = [
            ShardSummary.from_vectors(vectors[block]) for block in blocks
        ]
        bounds, _ = shard_lower_bounds(np.zeros((3, 0)), summaries, 0)
        assert (bounds == 0.0).all()


class TestPrunedShardSafety:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 40),
        p=st.integers(1, 16),
        k=st.integers(1, 12),
        duplicate_heavy=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_prunable_shards_hold_no_top_k_member(
        self, seed, n, p, k, duplicate_heavy
    ):
        """The exact-mode guarantee, checked against ground truth.

        ``prunable`` consulted with the *true* k-th-best distance is the
        most permissive skip decision exact mode could ever make (the
        running threshold is only ever >= the final one), so if even
        that never discards a top-k member, no execution order can.
        """
        rng = np.random.default_rng(seed)
        k = min(k, n)
        vectors = _random_database(rng, n, p, duplicate_heavy)
        blocks = _random_blocks(rng, n)
        queries = rng.integers(0, 2, size=(4, p)).astype(float)
        summaries = [
            ShardSummary.from_vectors(vectors[block]) for block in blocks
        ]
        bounds, _ = shard_lower_bounds(queries, summaries, p)
        distances = _normalized_distances(queries, vectors, p)
        for qi in range(queries.shape[0]):
            top, scores = rank_with_ties(distances[qi], k)
            threshold = scores[-1]
            top_set = set(top)
            for si, block in enumerate(blocks):
                if prunable(float(bounds[qi, si]), threshold):
                    overlap = top_set & {int(i) for i in block}
                    assert not overlap, (
                        f"shard {si} was prunable at threshold "
                        f"{threshold!r} but holds top-k members {overlap}"
                    )


def _vector_service_mapping(vectors):
    """A real mapping over raw binary *vectors* (single-vertex features)."""
    n, p = vectors.shape
    features = [
        FrequentSubgraph(
            LabeledGraph([f"d{j}"], graph_id=f"d{j}"),
            {int(i) for i in np.flatnonzero(vectors[:, j])},
        )
        for j in range(p)
    ]
    return mapping_from_selection(FeatureSpace(features, n), list(range(p)))


class TestServiceLevelIdentity:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 30),
        p=st.integers(1, 10),
        k=st.integers(1, 8),
        duplicate_heavy=st.booleans(),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_exact_pruning_bit_identical_to_full_scan(
        self, seed, n, p, k, duplicate_heavy
    ):
        rng = np.random.default_rng(seed)
        k = min(k, n)
        vectors = _random_database(rng, n, p, duplicate_heavy)
        blocks = _random_blocks(rng, n)
        queries = rng.integers(0, 2, size=(5, p)).astype(float)
        mapping = _vector_service_mapping(vectors)
        with QueryService(
            mapping.query_engine(), shards=blocks, n_workers=0, cache_size=0
        ) as service:
            full = service.batch_query_vectors(
                queries, k, SearchPolicy(prune=False)
            )
            pruned = service.batch_query_vectors(queries, k)
            everything = service.batch_query_vectors(
                queries, k, SearchPolicy(mode="approx", nprobe=len(blocks))
            )
        for a, b, c in zip(full, pruned, everything):
            assert a.ranking == b.ranking
            assert a.scores == b.scores
            assert a.ranking == c.ranking
            assert a.scores == c.scores
