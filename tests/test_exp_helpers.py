"""Unit tests for small experiment-module helpers."""

import numpy as np
import pytest

from repro.experiments.exp_fig1 import NUM_BINS, _histogram, histogram_intersection
from repro.experiments.harness import estimate_pair_seconds
from repro.datasets import chemical_database


class TestHistogram:
    def test_normalised(self):
        values = np.array([0.1, 0.2, 0.3, 0.9])
        h = _histogram(values)
        assert h.sum() == pytest.approx(1.0)
        assert len(h) == NUM_BINS

    def test_empty_input(self):
        h = _histogram(np.array([]))
        assert h.sum() == 0.0

    def test_out_of_range_clipped_out(self):
        # histogram range is [0, 1]; values inside all land in bins
        h = _histogram(np.array([0.0, 0.5, 0.999]))
        assert h.sum() == pytest.approx(1.0)


class TestHistogramIntersection:
    def test_identical_is_one(self):
        h = _histogram(np.array([0.1, 0.5, 0.9]))
        assert histogram_intersection(h, h) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        a = _histogram(np.array([0.05] * 5))
        b = _histogram(np.array([0.95] * 5))
        assert histogram_intersection(a, b) == 0.0

    def test_symmetric(self):
        a = _histogram(np.array([0.1, 0.4]))
        b = _histogram(np.array([0.4, 0.8]))
        assert histogram_intersection(a, b) == histogram_intersection(b, a)


class TestEstimatePairSeconds:
    def test_positive_and_reasonable(self):
        db = chemical_database(10, seed=0)
        per = estimate_pair_seconds(db, seed=0, samples=10)
        assert 0.0 < per < 1.0  # milliseconds-scale per MCS on molecules
