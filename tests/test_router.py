"""Behaviour tests for the router tier over N serving replicas.

The router's contract extends the frontend's: everything admitted is
answered bit-identically to the engine *regardless of which replica
answers or dies*, a session that wrote never reads an older generation,
and quotas bound a tenant's rate across the whole cluster, not per
replica.
"""

import asyncio
import json

import pytest

from repro.core.mapping import mapping_from_selection
from repro.datasets import synthetic_database, synthetic_query_set
from repro.features.binary_matrix import FeatureSpace
from repro.index import load_index, save_index
from repro.mining import mine_frequent_subgraphs
from repro.query.bench import variance_selection
from repro.serving import protocol
from repro.serving.frontend import AsyncFrontend, FrontendConfig
from repro.serving.router import (
    ContentPlacer,
    InprocReplica,
    Router,
    RouterConfig,
    TcpReplica,
)
from repro.serving.service import QueryService
from repro.utils.errors import ReplicaError


@pytest.fixture(scope="module")
def materials(tmp_path_factory):
    db = synthetic_database(28, avg_edges=14, density=0.3, num_labels=5,
                            seed=7)
    queries = synthetic_query_set(
        8, avg_edges=14, density=0.3, num_labels=5, seed=77
    )
    features = mine_frequent_subgraphs(db, min_support=0.2, max_edges=5)
    space = FeatureSpace(features, len(db))
    mapping = mapping_from_selection(space, variance_selection(space, 12))
    path = tmp_path_factory.mktemp("cluster") / "index.json"
    save_index(mapping, path)
    return queries, mapping, str(path)


def _replica(name, artifact, **config_kwargs):
    """A replica over its *own* copy of the index — updates mutate the
    mapping in place, so sharing one would entangle replica states."""
    service = QueryService(
        load_index(artifact).query_engine(), n_shards=2, n_workers=0
    )
    frontend = AsyncFrontend(
        service, FrontendConfig(**config_kwargs), own_service=True
    )
    return InprocReplica(name, frontend)


async def _started(replicas):
    for replica in replicas:
        await replica.frontend.start()
    return replicas


def _wire_query(q, k, request_id=0, tenant=None):
    request = {
        "op": "query", "id": request_id, "k": k,
        "graph": protocol.graph_to_wire(q),
    }
    if tenant is not None:
        request["tenant"] = tenant
    return request


class TestContentPlacer:
    def test_blocks_deterministic_and_in_range(self, materials):
        queries, mapping, _path = materials
        placer = ContentPlacer(mapping, n_blocks=3)
        blocks = [placer.block_for(q) for q in queries]
        assert all(0 <= b < placer.n_blocks for b in blocks)
        assert blocks == [placer.block_for(q) for q in queries]

    def test_repeat_queries_hit_the_cache(self, materials):
        queries, mapping, _path = materials
        placer = ContentPlacer(mapping, n_blocks=2, cache_size=4)
        placer.block_for(queries[0])
        placer.block_for(queries[0])
        assert len(placer._cache) == 1  # one signature, one entry

    def test_more_blocks_than_rows_collapses(self, materials):
        _queries, mapping, _path = materials
        placer = ContentPlacer(mapping, n_blocks=10_000)
        assert placer.n_blocks == mapping.database_vectors.shape[0]


class TestPlacementRouting:
    @pytest.mark.asyncio
    async def test_content_placed_answers_are_bit_identical(self, materials):
        queries, mapping, path = materials
        oracle = mapping.query_engine()
        replicas = await _started(
            [_replica(f"r{i}", path) for i in range(2)]
        )
        placer = ContentPlacer(mapping, n_blocks=2)
        async with Router(
            replicas, RouterConfig(health_interval=0), placer=placer
        ) as router:
            for i, q in enumerate(queries):
                response = await router.handle_request(
                    _wire_query(q, 5, request_id=i)
                )
                truth = oracle.query(q, 5)
                assert response["ok"] and response["id"] == i
                assert response["ranking"] == truth.ranking
                assert response["scores"] == truth.scores
                # The router places the graph as decoded off the wire
                # (JSON stringifies labels), so expect that view.
                decoded = protocol.graph_from_wire(protocol.graph_to_wire(q))
                assert response["replica"] == (
                    f"r{placer.block_for(decoded) % 2}"
                )
            assert router.stats.placed_content == len(queries)
            assert router.stats.placed_round_robin == 0

    @pytest.mark.asyncio
    async def test_no_placer_round_robins_over_replicas(self, materials):
        queries, _mapping, path = materials
        replicas = await _started(
            [_replica(f"r{i}", path) for i in range(2)]
        )
        async with Router(
            replicas, RouterConfig(health_interval=0)
        ) as router:
            for q in queries:
                assert (await router.handle_request(_wire_query(q, 3)))["ok"]
            assert router.stats.placed_round_robin == len(queries)
            assert all(r.routed == len(queries) // 2 for r in replicas)


class TestFailover:
    @pytest.mark.asyncio
    async def test_dead_replica_fails_over_bit_identically(self, materials):
        queries, mapping, path = materials
        oracle = mapping.query_engine()
        replicas = await _started(
            [_replica(f"r{i}", path) for i in range(2)]
        )
        async with Router(
            replicas, RouterConfig(health_interval=0)
        ) as router:
            replicas[0].fail()
            for q in queries:
                response = await router.handle_request(_wire_query(q, 4))
                assert response["ok"]
                assert response["replica"] == "r1"
                assert response["ranking"] == oracle.query(q, 4).ranking
            assert router.stats.failovers >= 1
            assert router.stats.replicas_lost == 1
            assert router.stats.completed == len(queries)

    @pytest.mark.asyncio
    async def test_all_replicas_down_is_structured_overload(self, materials):
        queries, _mapping, path = materials
        replicas = await _started([_replica("only", path)])
        async with Router(
            replicas, RouterConfig(health_interval=0)
        ) as router:
            replicas[0].fail()
            response = await router.handle_request(_wire_query(queries[0], 3))
            assert not response["ok"]
            assert response["error"] == "overloaded"
            assert "no healthy replica" in response["message"]


class TestReadYourWrites:
    @pytest.mark.asyncio
    async def test_update_fans_out_and_floors_the_writer(self, materials):
        queries, _mapping, path = materials
        replicas = await _started(
            [_replica(f"r{i}", path) for i in range(2)]
        )
        # The gen-1 oracle: a private copy mutated the same way a
        # replica's apply_update would (removes first, then adds).
        shadow = load_index(path)
        shadow.remove_graphs([0, 1])
        shadow.add_graphs([queries[0]])
        shadow_engine = shadow.query_engine()
        async with Router(
            replicas, RouterConfig(health_interval=0)
        ) as router:
            response = await router.handle_request(
                {
                    "op": "update", "id": 1, "remove": [0, 1],
                    "add": [protocol.graph_to_wire(queries[0])],
                    "tenant": "writer",
                }
            )
            assert response["ok"]
            assert response["generation"] == 1
            assert response["replicas_updated"] == 2
            assert router._session_floor("writer") == 1
            for q in queries:
                answer = await router.handle_request(
                    _wire_query(q, 4, tenant="writer")
                )
                truth = shadow_engine.query(q, 4)
                assert answer["ok"] and answer["generation"] == 1
                assert answer["ranking"] == truth.ranking
                assert answer["scores"] == truth.scores

    @pytest.mark.asyncio
    async def test_writer_never_routed_to_lagging_replica(self, materials):
        queries, _mapping, path = materials
        replicas = await _started(
            [_replica(f"r{i}", path) for i in range(2)]
        )
        async with Router(
            replicas, RouterConfig(health_interval=0)
        ) as router:
            await router.handle_request(
                {"op": "update", "id": 1, "remove": [0], "tenant": "writer"}
            )
            # Simulate a lagging view of r0 (e.g. stale ping state): the
            # floor must exclude it from the writer's eligible set.
            replicas[0].generation = 0
            for q in queries:
                answer = await router.handle_request(
                    _wire_query(q, 3, tenant="writer")
                )
                assert answer["ok"]
                assert answer["replica"] == "r1"
                assert answer["generation"] == 1
            # A fresh session has no floor: r0 is still fair game.
            assert router._session_floor("reader") == 0

    @pytest.mark.asyncio
    async def test_restarted_replica_catches_up_via_replay(self, materials):
        queries, _mapping, path = materials
        replicas = await _started(
            [_replica(f"r{i}", path) for i in range(2)]
        )
        async with Router(
            replicas, RouterConfig(health_interval=0)
        ) as router:
            await router.handle_request(
                {"op": "update", "id": 1, "remove": [0, 2],
                 "tenant": "writer"}
            )
            replicas[1].fail()
            router._mark_down(replicas[1])
            # "Restart from the artifact": generation 0 again.
            (replacement,) = await _started([_replica("r1b", path)])
            await router.admit_replica(replacement, replace="r1")
            assert replacement.generation == 1  # caught up before serving
            assert router.stats.replayed_entries == 1
            assert router.replicas[1] is replacement  # slot preserved
            answer = await router.handle_request(
                _wire_query(queries[0], 3, tenant="writer")
            )
            assert answer["ok"] and answer["generation"] == 1
            await replicas[1].close()  # the dead handle is ours to reap

    @pytest.mark.asyncio
    async def test_evicted_floor_raises_the_shared_floor(self, materials):
        queries, _mapping, path = materials
        replicas = await _started([_replica("r0", path)])
        async with Router(
            replicas, RouterConfig(health_interval=0, max_tenants=1)
        ) as router:
            await router.handle_request(
                {"op": "update", "id": 1, "remove": [0], "tenant": "writer"}
            )
            router._set_floor("someone-else", 0)  # evicts "writer"
            # Safety over precision: the unknown session may be the
            # writer, so everyone inherits the evicted floor.
            assert router._session_floor("writer") == 1
            assert router._session_floor("anyone") == 1


class TestClusterQuota:
    @pytest.mark.asyncio
    async def test_quota_is_cluster_wide_not_per_replica(self, materials):
        """Two replicas must not double a tenant's budget: the third
        query is rejected even though each replica alone saw one."""
        queries, _mapping, path = materials
        clock = [0.0]
        replicas = await _started(
            [_replica(f"r{i}", path) for i in range(2)]
        )
        async with Router(
            replicas,
            RouterConfig(
                health_interval=0, quota_rate=1.0, quota_burst=2.0,
                clock=lambda: clock[0],
            ),
        ) as router:
            for q in queries[:2]:
                assert (
                    await router.handle_request(_wire_query(q, 3, tenant="t"))
                )["ok"]
            assert all(r.routed == 1 for r in replicas)
            rejected = await router.handle_request(
                _wire_query(queries[2], 3, tenant="t")
            )
            assert not rejected["ok"]
            assert rejected["error"] == "quota_exceeded"
            assert rejected["retry_after"] == pytest.approx(1.0)
            clock[0] = 1.0  # virtual refill, zero sleeps
            assert (
                await router.handle_request(_wire_query(queries[2], 3,
                                                        tenant="t"))
            )["ok"]

    @pytest.mark.asyncio
    async def test_name_cycling_is_bounded_and_counted(self, materials):
        queries, _mapping, path = materials
        clock = [0.0]
        replicas = await _started(
            [_replica(f"r{i}", path) for i in range(2)]
        )
        rate, burst, max_tenants = 2.0, 2.0, 2
        async with Router(
            replicas,
            RouterConfig(
                health_interval=0, quota_rate=rate, quota_burst=burst,
                max_tenants=max_tenants, clock=lambda: clock[0],
            ),
        ) as router:
            admitted = 0
            while clock[0] < 5.0:
                for i in range(max_tenants + 1):
                    response = await router.handle_request(
                        _wire_query(queries[0], 3, tenant=f"cycler-{i}")
                    )
                    admitted += int(response["ok"])
                clock[0] += 0.1
            budget = max_tenants + burst + rate * 5.0
            assert admitted <= budget + 1
            assert router.stats.rejected_quota > 0
            payload = router.stats_payload()
            assert payload["router"]["bucket_evictions"] > 0


class TestBackpressure:
    @pytest.mark.asyncio
    async def test_retry_after_folds_depth_and_drain_rate(self, materials):
        queries, _mapping, path = materials
        replicas = await _started(
            [_replica(f"r{i}", path) for i in range(2)]
        )
        async with Router(
            replicas, RouterConfig(health_interval=0, max_inflight=1)
        ) as router:
            # Measured state: r0 drains 10ms/query with 4 ahead, r1
            # drains 50ms/query with nothing ahead.  The honest quote is
            # the *least* loaded replica's drain time.
            replicas[0]._drain_interval = 0.01
            replicas[0].reported_queue_depth = 4
            replicas[1]._drain_interval = 0.05
            router._inflight = 1  # saturate cluster admission
            response = await router.handle_request(_wire_query(queries[0], 3))
            router._inflight = 0
            assert not response["ok"]
            assert response["error"] == "overloaded"
            expected = min((4 + 1) * 0.01, (0 + 1) * 0.05)
            assert response["retry_after"] == pytest.approx(expected)

    @pytest.mark.asyncio
    async def test_unmeasured_cluster_quotes_conservative_floor(
        self, materials
    ):
        queries, _mapping, path = materials
        replicas = await _started([_replica("r0", path)])
        async with Router(
            replicas, RouterConfig(health_interval=0, max_inflight=2)
        ) as router:
            router._inflight = 2
            response = await router.handle_request(
                {"op": "batch", "id": 1, "k": 3, "graphs": [
                    protocol.graph_to_wire(q) for q in queries[:2]
                ]}
            )
            router._inflight = 0
            assert not response["ok"] and response["error"] == "overloaded"
            assert response["retry_after"] == pytest.approx(0.05 * 2)

    @pytest.mark.asyncio
    async def test_drain_rate_measured_on_configured_clock(self, materials):
        """Regression: completion times were stamped with
        ``time.monotonic()`` even when ``RouterConfig`` supplied its own
        clock, so any virtual-time harness saw microsecond drain
        estimates instead of the modelled interval. Zero sleeps: the
        EWMA must read exactly the virtual time between completions."""
        queries, _mapping, path = materials
        clock = [0.0]
        replicas = await _started([_replica("r0", path)])
        async with Router(
            replicas,
            RouterConfig(health_interval=0, clock=lambda: clock[0]),
        ) as router:
            assert (
                await router.handle_request(_wire_query(queries[0], 3))
            )["ok"]
            clock[0] = 2.0  # the second query "takes" 2 virtual seconds
            assert (
                await router.handle_request(_wire_query(queries[1], 3))
            )["ok"]
            assert replicas[0].drain_interval == pytest.approx(2.0)
            described = replicas[0].describe()
            assert described["drain_interval"] == pytest.approx(2.0)

    @pytest.mark.asyncio
    async def test_draining_router_rejects_structured(self, materials):
        queries, _mapping, path = materials
        replicas = await _started([_replica("r0", path)])
        async with Router(
            replicas, RouterConfig(health_interval=0)
        ) as router:
            router.begin_drain()
            response = await router.handle_request(_wire_query(queries[0], 3))
            assert not response["ok"]
            assert response["error"] == "shutting_down"


class TestStatsAndProtocol:
    @pytest.mark.asyncio
    async def test_stats_payload_shape(self, materials):
        queries, _mapping, path = materials
        replicas = await _started(
            [_replica(f"r{i}", path) for i in range(2)]
        )
        async with Router(
            replicas, RouterConfig(health_interval=0)
        ) as router:
            await router.handle_request(_wire_query(queries[0], 3))
            response = await router.handle_request({"op": "stats", "id": 2})
            assert response["ok"]
            assert response["generation"] == 0
            assert response["router"]["admitted"] == 1
            assert response["router"]["completed"] == 1
            names = [r["name"] for r in response["replicas"]]
            assert names == ["r0", "r1"]
            assert all(r["healthy"] for r in response["replicas"])

    @pytest.mark.asyncio
    async def test_bad_lines_and_pings(self, materials):
        _queries, _mapping, path = materials
        replicas = await _started([_replica("r0", path)])
        async with Router(
            replicas, RouterConfig(health_interval=0)
        ) as router:
            bad = await router.handle_line("{ not json")
            assert not bad["ok"] and bad["error"] == "bad_request"
            pong = await router.handle_request({"op": "ping", "id": 5})
            assert pong["ok"] and pong["generation"] == 0
            assert pong["queue_depth"] == 0 and pong["draining"] is False

    @pytest.mark.asyncio
    @pytest.mark.timeout(30)
    async def test_router_serves_the_ndjson_tcp_protocol(self, materials):
        """serve_tcp runs a Router exactly like an AsyncFrontend."""
        queries, mapping, path = materials
        oracle = mapping.query_engine()
        replicas = await _started(
            [_replica(f"r{i}", path) for i in range(2)]
        )
        router = await Router(
            replicas, RouterConfig(health_interval=0)
        ).start()
        server = await protocol.serve_tcp(router, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                (json.dumps(_wire_query(queries[0], 3, request_id=1)) + "\n")
                .encode()
            )
            await writer.drain()
            answer = json.loads(await reader.readline())
            assert answer["ok"]
            assert answer["ranking"] == oracle.query(queries[0], 3).ranking
            writer.write((json.dumps({"op": "shutdown", "id": 2}) + "\n")
                         .encode())
            await writer.drain()
            bye = json.loads(await reader.readline())
            assert bye["ok"] and bye["draining"]
            assert router.draining
            writer.close()
            server.close()
            await asyncio.wait_for(server.wait_closed(), timeout=5)
        finally:
            await router.aclose()


class TestTcpReplicaTransport:
    @pytest.mark.asyncio
    @pytest.mark.timeout(30)
    async def test_tcp_replica_round_trip_and_death(self, materials):
        queries, mapping, path = materials
        oracle = mapping.query_engine()
        service = QueryService(
            load_index(path).query_engine(), n_shards=2, n_workers=0
        )
        frontend = AsyncFrontend(service, FrontendConfig(), own_service=True)
        await frontend.start()
        server = await protocol.serve_tcp(frontend, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        replica = TcpReplica("tcp0", "127.0.0.1", port)
        try:
            pong = await replica.request({"op": "ping", "id": "p"})
            assert pong["ok"]
            # Pipelined requests correlate by id, not arrival order.
            answers = await asyncio.gather(
                *(replica.request(_wire_query(q, 3, request_id=f"x{i}"))
                  for i, q in enumerate(queries[:4]))
            )
            for q, answer in zip(queries[:4], answers):
                assert answer["ok"]
                assert answer["ranking"] == oracle.query(q, 3).ranking
            # Server dies: the transport surfaces ReplicaError, the
            # router's failover layer takes it from there.
            server.close()
            frontend.begin_drain()
            await server.wait_closed()
            for _ in range(1000):  # until the peer's close reaches us
                if replica._writer is None:
                    break
                await asyncio.sleep(0.005)
            assert replica._writer is None
            with pytest.raises(ReplicaError):
                await replica.request(_wire_query(queries[0], 3,
                                                  request_id="dead"))
        finally:
            await replica.close()
            await frontend.aclose()
