"""Tests for the exact and mapped top-k engines."""

import numpy as np
import pytest

from repro.core.mapping import build_mapping
from repro.query.topk import ExactTopKEngine, MappedTopKEngine, rank_with_ties
from repro.similarity import DissimilarityCache
from repro.utils.errors import QueryError


@pytest.fixture(scope="module")
def mapping(small_chemical_db):
    return build_mapping(
        small_chemical_db, num_features=8, min_support=0.2, max_pattern_edges=3
    )


class TestRankWithTies:
    def test_basic_order(self):
        ranking, scores = rank_with_ties(np.array([0.3, 0.1, 0.2]), 2)
        assert ranking == [1, 2]
        assert scores == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_tie_broken_by_index(self):
        ranking, _scores = rank_with_ties(np.array([0.5, 0.1, 0.1]), 2)
        assert ranking == [1, 2]

    def test_k_larger_than_n(self):
        ranking, _ = rank_with_ties(np.array([0.2, 0.1]), 5)
        assert len(ranking) == 2

    def test_k_equals_n(self):
        """k == n skips the argpartition narrowing entirely."""
        values = np.array([0.4, 0.1, 0.3, 0.2])
        ranking, scores = rank_with_ties(values, 4)
        assert ranking == [1, 3, 2, 0]
        assert scores == sorted(float(v) for v in values)

    def test_k_zero_returns_empty(self):
        ranking, scores = rank_with_ties(np.array([0.3, 0.1]), 0)
        assert ranking == [] and scores == []

    def test_negative_k_returns_empty(self):
        ranking, scores = rank_with_ties(np.array([0.3, 0.1]), -3)
        assert ranking == [] and scores == []

    def test_empty_values(self):
        for k in (0, 1, 5):
            ranking, scores = rank_with_ties(np.array([]), k)
            assert ranking == [] and scores == []

    def test_all_equal_distances_rank_by_index(self):
        """Every value ties: the ranking must be 0..k-1 exactly (the
        (value, index) discipline the sharded merge relies on)."""
        values = np.zeros(12)
        for k in (1, 5, 12, 20):
            ranking, scores = rank_with_ties(values, k)
            expect = min(k, 12)
            assert ranking == list(range(expect))
            assert scores == [0.0] * expect

    def test_all_equal_matches_full_sort_path(self):
        """The argpartition fast path and the full-lexsort fallback must
        agree bit for bit on an all-ties input."""
        values = np.full(9, 0.25)
        fast = rank_with_ties(values, 4)           # k < n: partition path
        full = rank_with_ties(values, 9)           # k == n: full sort
        assert fast[0] == full[0][:4]
        assert fast[1] == full[1][:4]

    def test_nan_threshold_falls_back_to_full_sort(self):
        """A NaN at the partition boundary must not drop candidates."""
        values = np.array([0.2, np.nan, 0.1, np.nan])
        ranking, scores = rank_with_ties(values, 2)
        assert ranking == [2, 0]
        assert scores == [pytest.approx(0.1), pytest.approx(0.2)]


class TestExactEngine:
    def test_self_query_ranks_first(self, small_chemical_db):
        engine = ExactTopKEngine(small_chemical_db)
        result = engine.query(small_chemical_db[3], k=5)
        assert result.ranking[0] == 3
        assert result.scores[0] == pytest.approx(0.0)

    def test_scores_nondecreasing(self, small_chemical_db):
        engine = ExactTopKEngine(small_chemical_db)
        result = engine.query(small_chemical_db[0], k=10)
        assert result.scores == sorted(result.scores)

    def test_invalid_k(self, small_chemical_db):
        engine = ExactTopKEngine(small_chemical_db)
        with pytest.raises(QueryError):
            engine.query(small_chemical_db[0], k=0)

    def test_query_from_row(self):
        engine = ExactTopKEngine([])
        row = np.array([0.4, 0.1, 0.9, 0.2])
        result = engine.query_from_row(row, k=2)
        assert result.ranking == [1, 3]

    def test_cache_shared_across_queries(self, small_chemical_db):
        cache = DissimilarityCache()
        engine = ExactTopKEngine(small_chemical_db, cache)
        engine.query(small_chemical_db[0], k=3)
        misses = cache.misses
        engine.query(small_chemical_db[0], k=5)  # same pairs, cached
        assert cache.misses == misses


class TestMappedEngine:
    def test_self_query_distance_zero(self, mapping, small_chemical_db):
        engine = MappedTopKEngine(mapping)
        result = engine.query(small_chemical_db[2], k=3)
        assert 2 in result.ranking[:3]
        assert min(result.scores) == pytest.approx(0.0)

    def test_timing_breakdown_populated(self, mapping, small_chemical_db):
        engine = MappedTopKEngine(mapping)
        result = engine.query(small_chemical_db[0], k=3)
        assert result.mapping_seconds >= 0.0
        assert result.search_seconds >= 0.0
        assert result.total_seconds == pytest.approx(
            result.mapping_seconds + result.search_seconds
        )

    def test_query_from_vector_matches_query(self, mapping, small_chemical_db):
        engine = MappedTopKEngine(mapping)
        q = small_chemical_db[5]
        direct = engine.query(q, k=4)
        vector = mapping.map_query(q)
        from_vec = engine.query_from_vector(vector, k=4)
        assert direct.ranking == from_vec.ranking

    def test_k_capped(self, mapping, small_chemical_db):
        engine = MappedTopKEngine(mapping)
        result = engine.query(small_chemical_db[0], k=10_000)
        assert len(result.ranking) == len(small_chemical_db)
