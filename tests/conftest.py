"""Shared fixtures: small graphs and databases used across the suite."""

import pytest

from repro.datasets import chemical_database, chemical_query_set
from repro.graph import LabeledGraph, graphgen_database


@pytest.fixture
def triangle():
    """A labeled triangle a-a-b with uniform edge labels."""
    return LabeledGraph(["a", "a", "b"], [(0, 1, "x"), (1, 2, "x"), (0, 2, "x")])


@pytest.fixture
def path3():
    """A 3-vertex path a-a-b."""
    return LabeledGraph(["a", "a", "b"], [(0, 1, "x"), (1, 2, "x")])


@pytest.fixture
def square_with_diagonal():
    return LabeledGraph(
        ["a", "a", "a", "a"],
        [(0, 1, "x"), (1, 2, "x"), (2, 3, "x"), (3, 0, "x"), (0, 2, "x")],
    )


@pytest.fixture(scope="session")
def small_synthetic_db():
    """20 random connected labeled graphs (deterministic)."""
    return graphgen_database(20, avg_edges=10, num_labels=4, density=0.3, seed=1)


@pytest.fixture(scope="session")
def small_chemical_db():
    """30 molecule-like graphs (deterministic)."""
    return chemical_database(30, seed=7)


@pytest.fixture(scope="session")
def small_chemical_queries():
    return chemical_query_set(5, seed=8)
