"""Shared fixtures: small graphs and databases used across the suite.

Also provides offline fallbacks for two optional pytest plugins the
serving tests use, so the tier-1 suite runs identically with or without
them installed (CI installs the real plugins; the offline container may
not have them):

* ``pytest-asyncio`` — ``async def`` tests marked ``asyncio`` run via
  ``asyncio.run`` when the plugin is absent;
* ``pytest-timeout`` — ``@pytest.mark.timeout(N)`` arms a SIGALRM
  watchdog when the plugin is absent, so a hung soak test fails instead
  of wedging the whole suite.
"""

import asyncio
import inspect
import signal
import threading

import pytest

from repro.datasets import chemical_database, chemical_query_set
from repro.graph import LabeledGraph, graphgen_database

try:  # pragma: no cover - plugin presence varies by environment
    import pytest_asyncio  # noqa: F401

    _HAVE_ASYNCIO_PLUGIN = True
except ImportError:
    _HAVE_ASYNCIO_PLUGIN = False

try:  # pragma: no cover - plugin presence varies by environment
    import pytest_timeout  # noqa: F401

    _HAVE_TIMEOUT_PLUGIN = True
except ImportError:
    _HAVE_TIMEOUT_PLUGIN = False


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "asyncio: run an async def test on a fresh event loop"
    )
    config.addinivalue_line(
        "markers", "timeout(seconds): fail the test if it runs this long"
    )


if not _HAVE_ASYNCIO_PLUGIN:

    @pytest.hookimpl(tryfirst=True)
    def pytest_pyfunc_call(pyfuncitem):
        func = pyfuncitem.obj
        if inspect.iscoroutinefunction(func):
            kwargs = {
                name: pyfuncitem.funcargs[name]
                for name in pyfuncitem._fixtureinfo.argnames
            }
            asyncio.run(func(**kwargs))
            return True
        return None


if not _HAVE_TIMEOUT_PLUGIN and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        marker = item.get_closest_marker("timeout")
        if (
            marker is None
            or not marker.args
            or threading.current_thread() is not threading.main_thread()
        ):
            yield
            return
        seconds = float(marker.args[0])

        def _expired(signum, frame):
            raise TimeoutError(
                f"test exceeded its {seconds:.0f}s timeout marker"
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def triangle():
    """A labeled triangle a-a-b with uniform edge labels."""
    return LabeledGraph(["a", "a", "b"], [(0, 1, "x"), (1, 2, "x"), (0, 2, "x")])


@pytest.fixture
def path3():
    """A 3-vertex path a-a-b."""
    return LabeledGraph(["a", "a", "b"], [(0, 1, "x"), (1, 2, "x")])


@pytest.fixture
def square_with_diagonal():
    return LabeledGraph(
        ["a", "a", "a", "a"],
        [(0, 1, "x"), (1, 2, "x"), (2, 3, "x"), (3, 0, "x"), (0, 2, "x")],
    )


@pytest.fixture(scope="session")
def small_synthetic_db():
    """20 random connected labeled graphs (deterministic)."""
    return graphgen_database(20, avg_edges=10, num_labels=4, density=0.3, seed=1)


@pytest.fixture(scope="session")
def small_chemical_db():
    """30 molecule-like graphs (deterministic)."""
    return chemical_database(30, seed=7)


@pytest.fixture(scope="session")
def small_chemical_queries():
    return chemical_query_set(5, seed=8)
