"""Tests for exact and bipartite graph edit distance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import LabeledGraph, random_connected_graph
from repro.isomorphism.ged import ged_bipartite, ged_exact
from repro.utils.rng import ensure_rng


class TestExactGED:
    def test_identical_zero(self, triangle):
        assert ged_exact(triangle, triangle) == 0.0

    def test_single_edge_deletion(self, triangle, path3):
        # triangle -> path: delete one edge.
        assert ged_exact(triangle, path3) == 1.0

    def test_label_substitution(self):
        a = LabeledGraph(["a", "b"], [(0, 1, "x")])
        b = LabeledGraph(["a", "c"], [(0, 1, "x")])
        assert ged_exact(a, b) == 1.0

    def test_edge_label_substitution(self):
        a = LabeledGraph(["a", "b"], [(0, 1, "x")])
        b = LabeledGraph(["a", "b"], [(0, 1, "y")])
        assert ged_exact(a, b) == 1.0

    def test_vertex_insertion(self):
        a = LabeledGraph(["a"])
        b = LabeledGraph(["a", "b"], [(0, 1, "x")])
        # insert vertex b + insert edge
        assert ged_exact(a, b) == 2.0

    def test_empty_graphs(self):
        assert ged_exact(LabeledGraph(), LabeledGraph()) == 0.0

    def test_symmetry(self, triangle, path3):
        assert ged_exact(triangle, path3) == ged_exact(path3, triangle)

    def test_size_guard(self):
        big = LabeledGraph(["a"] * 12)
        with pytest.raises(ValueError):
            ged_exact(big, big)


class TestBipartiteGED:
    def test_identical_zero(self, triangle):
        assert ged_bipartite(triangle, triangle) == 0.0

    def test_upper_bounds_exact(self, triangle, path3):
        assert ged_bipartite(triangle, path3) >= ged_exact(triangle, path3)

    def test_nonnegative(self, small_chemical_db):
        a, b = small_chemical_db[0], small_chemical_db[1]
        assert ged_bipartite(a, b) >= 0.0

    def test_scales_to_molecules(self, small_chemical_db):
        # just run on real-sized molecules (exact would explode)
        values = [
            ged_bipartite(small_chemical_db[i], small_chemical_db[i + 1])
            for i in range(4)
        ]
        assert all(v >= 0 for v in values)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_bipartite_upper_bounds_exact_property(seed):
    """Property: BP-GED >= exact GED, and both are symmetric-ish."""
    rng = ensure_rng(seed)
    v1 = int(rng.integers(2, 5))
    e1 = int(rng.integers(v1 - 1, v1 * (v1 - 1) // 2 + 1))
    v2 = int(rng.integers(2, 5))
    e2 = int(rng.integers(v2 - 1, v2 * (v2 - 1) // 2 + 1))
    g1 = random_connected_graph(v1, e1, num_vertex_labels=2, seed=rng)
    g2 = random_connected_graph(v2, e2, num_vertex_labels=2, seed=rng)
    exact = ged_exact(g1, g2)
    approx = ged_bipartite(g1, g2)
    assert approx >= exact - 1e-9
    assert exact >= 0.0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_exact_ged_triangle_inequality(seed):
    """Property: exact GED satisfies the triangle inequality."""
    rng = ensure_rng(seed)
    graphs = [
        random_connected_graph(3, int(rng.integers(2, 4)), 2, seed=rng)
        for _ in range(3)
    ]
    d01 = ged_exact(graphs[0], graphs[1])
    d12 = ged_exact(graphs[1], graphs[2])
    d02 = ged_exact(graphs[0], graphs[2])
    assert d02 <= d01 + d12 + 1e-9
