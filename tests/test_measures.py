"""Tests for the ranked-list quality measures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.query.measures import (
    PERFECT_INVERSE_RANK,
    inverse_rank_distance,
    kendall_tau_topk,
    precision_at_k,
    rank_distance,
)


class TestPrecision:
    def test_perfect(self):
        assert precision_at_k([1, 2, 3], [1, 2, 3]) == 1.0

    def test_disjoint(self):
        assert precision_at_k([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert precision_at_k([1, 2, 3, 4], [1, 2, 9, 9]) == 0.5

    def test_order_irrelevant(self):
        assert precision_at_k([3, 2, 1], [1, 2, 3]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            precision_at_k([], [1])


class TestKendallTau:
    def test_perfect_ranking_positive(self):
        tau = kendall_tau_topk([1, 2, 3], [1, 2, 3], database_size=10)
        assert tau > 0

    def test_perfect_beats_reversed(self):
        perfect = kendall_tau_topk([1, 2, 3, 4], [1, 2, 3, 4], 20)
        reversed_ = kendall_tau_topk([4, 3, 2, 1], [1, 2, 3, 4], 20)
        assert perfect > reversed_

    def test_normalisation_formula(self):
        # k=2, n=5: perfect list scores 1/(k(2n-k-1)) * Σ...
        tau = kendall_tau_topk([1, 2], [1, 2], 5)
        # one concordant pair / (2 * (10-2-1)) = 1/14
        assert tau == pytest.approx(1 / 14)

    def test_absent_items_handled(self):
        tau = kendall_tau_topk([8, 9], [1, 2], 10)
        assert tau >= 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau_topk([], [1], 5)


class TestRankDistance:
    def test_perfect_zero(self):
        assert rank_distance([1, 2, 3], [1, 2, 3]) == 0.0

    def test_swap_costs_two(self):
        # positions (1,2) vs true (2,1): |1-2| + |2-1| = 2, /k = 1
        assert rank_distance([2, 1], [1, 2]) == 1.0

    def test_absent_item_penalised(self):
        # item 9 absent from truth => true rank k+1 = 3
        assert rank_distance([9, 1], [1, 2]) == pytest.approx((2 + 1) / 2)

    def test_inverse_perfect_capped(self):
        assert inverse_rank_distance([1, 2], [1, 2]) == PERFECT_INVERSE_RANK

    def test_inverse_monotone_in_quality(self):
        good = inverse_rank_distance([1, 2, 4], [1, 2, 3])
        bad = inverse_rank_distance([9, 8, 7], [1, 2, 3])
        assert good > bad


@settings(max_examples=40, deadline=None)
@given(
    perm=st.permutations(list(range(8))),
    k=st.integers(min_value=1, max_value=8),
)
def test_measures_bounded(perm, k):
    """Property: all measures stay within their documented ranges."""
    approx = list(perm)[:k]
    truth = list(range(k))
    n = 20
    assert 0.0 <= precision_at_k(approx, truth) <= 1.0
    assert 0.0 <= kendall_tau_topk(approx, truth, n) <= 1.0
    assert rank_distance(approx, truth) >= 0.0
    assert 0.0 < inverse_rank_distance(approx, truth) <= PERFECT_INVERSE_RANK


@settings(max_examples=30, deadline=None)
@given(k=st.integers(min_value=1, max_value=10))
def test_perfect_ranking_dominates(k):
    """Property: the identity ranking maximises every measure."""
    truth = list(range(k))
    shuffled = list(reversed(truth))
    assert precision_at_k(truth, truth) >= precision_at_k(shuffled, truth)
    assert kendall_tau_topk(truth, truth, 30) >= kendall_tau_topk(
        shuffled, truth, 30
    )
    assert inverse_rank_distance(truth, truth) >= inverse_rank_distance(
        shuffled, truth
    )
