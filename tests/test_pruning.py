"""The bounded shard-skipping query tier, end to end.

Exact mode's contract is the service's own, unchanged: *bit-identical
results* — now with most shard distance blocks never computed.  These
tests pin that identity across shard counts, shard modes, tie-heavy
workloads, and post-``apply_update`` states, with skip counters proving
shards actually get skipped on clustered data (a pruning tier that
never prunes would pass a pure identity suite).  Approx mode, the
artifact summary lifecycle, DSPMap routing, and the wire protocol's
``search``/``pruning`` fields are covered alongside.
"""

import json

import numpy as np
import pytest

from repro.core.dspmap import DSPMap
from repro.core.mapping import mapping_from_selection
from repro.datasets import synthetic_database, synthetic_query_set
from repro.features.binary_matrix import FeatureSpace
from repro.graph.labeled_graph import LabeledGraph
from repro.index import load_index, save_index
from repro.mining import mine_frequent_subgraphs
from repro.query.bench import variance_selection
from repro.query.pruning import (
    PruningTrace,
    SearchPolicy,
    ShardSummary,
    shard_lower_bounds,
    summaries_for_blocks,
)
from repro.serving import protocol
from repro.serving.frontend import AsyncFrontend, FrontendConfig
from repro.serving.service import QueryService
from repro.utils.errors import (
    ArtifactCorruptError,
    ProtocolError,
    QueryError,
    SelectionError,
)

N_CLUSTERS = 3
PER_CLUSTER = 12
NUM_LABELS = 4


def offset_graph(g: LabeledGraph, offset: int) -> LabeledGraph:
    """Shift every label by *offset*: disjoint alphabets per cluster."""
    labels = [g.vertex_label(v) + offset for v in range(g.num_vertices)]
    edges = [(e.u, e.v, e.label) for e in g.edges()]
    return LabeledGraph(labels, edges, graph_id=f"{g.graph_id}o{offset}")


def make_clustered(per_cluster=PER_CLUSTER, queries_per_cluster=4):
    """A database of label-disjoint clusters + per-cluster query lists.

    Features mined from one cluster can only match that cluster's
    graphs (and queries), so the embedding is block-structured — the
    geometry DSPMap partitions produce, at unit-test scale.
    """
    db, per_cluster_queries = [], []
    for c in range(N_CLUSTERS):
        base = synthetic_database(
            per_cluster, avg_edges=14, density=0.3,
            num_labels=NUM_LABELS, seed=100 + c,
        )
        db.extend(offset_graph(g, c * NUM_LABELS) for g in base)
        qs = synthetic_query_set(
            queries_per_cluster, avg_edges=14, density=0.3,
            num_labels=NUM_LABELS, seed=500 + c,
        )
        per_cluster_queries.append(
            [offset_graph(q, c * NUM_LABELS) for q in qs]
        )
    features = mine_frequent_subgraphs(db, min_support=0.12, max_edges=4)
    space = FeatureSpace(features, len(db))
    mapping = mapping_from_selection(space, variance_selection(space, 24))
    blocks = [
        np.arange(c * per_cluster, (c + 1) * per_cluster, dtype=np.int64)
        for c in range(N_CLUSTERS)
    ]
    return db, per_cluster_queries, mapping, blocks


@pytest.fixture(scope="module")
def clustered():
    return make_clustered()


@pytest.fixture(scope="module")
def random_setup():
    db = synthetic_database(40, avg_edges=16, density=0.3, num_labels=5, seed=3)
    queries = synthetic_query_set(
        20, avg_edges=16, density=0.3, num_labels=5, seed=99
    )
    features = mine_frequent_subgraphs(db, min_support=0.2, max_edges=5)
    space = FeatureSpace(features, len(db))
    return queries, mapping_from_selection(space, variance_selection(space, 20))


def _assert_identical(reference, batch):
    assert len(reference) == len(batch)
    for a, b in zip(reference, batch):
        assert a.ranking == b.ranking
        assert a.scores == b.scores


class TestSearchPolicy:
    def test_default_is_exact_with_pruning(self):
        policy = SearchPolicy()
        assert policy.mode == "exact"
        assert policy.prune
        assert not policy.is_full_scan
        assert SearchPolicy(prune=False).is_full_scan

    def test_unknown_mode_rejected(self):
        with pytest.raises(QueryError, match="unknown search mode"):
            SearchPolicy(mode="fuzzy")

    def test_approx_requires_nprobe(self):
        with pytest.raises(QueryError, match="nprobe"):
            SearchPolicy(mode="approx")
        with pytest.raises(QueryError, match="nprobe"):
            SearchPolicy(mode="approx", nprobe=0)

    def test_nprobe_rejected_for_exact(self):
        with pytest.raises(QueryError, match="only applies"):
            SearchPolicy(mode="exact", nprobe=2)

    def test_bool_nprobe_rejected(self):
        # bool passes isinstance(..., int); the wire layer always
        # rejected it, but the dataclass used to read True as nprobe=1.
        with pytest.raises(QueryError, match="integer nprobe"):
            SearchPolicy(mode="approx", nprobe=True)

    def test_bool_ef_rejected(self):
        with pytest.raises(QueryError, match="integer ef"):
            SearchPolicy(mode="graph", ef=True)

    def test_auto_nprobe_accepted(self):
        policy = SearchPolicy(mode="approx", nprobe="auto")
        assert policy.nprobe == "auto"
        assert not policy.is_full_scan

    def test_auto_nprobe_requires_pruning(self):
        with pytest.raises(QueryError, match="prune=True"):
            SearchPolicy(mode="approx", nprobe="auto", prune=False)

    def test_hashable_for_coalescing(self):
        assert hash(SearchPolicy()) == hash(SearchPolicy())
        groups = {
            SearchPolicy(): 1,
            SearchPolicy(mode="approx", nprobe=2): 2,
            SearchPolicy(mode="approx", nprobe="auto"): 3,
        }
        assert groups[SearchPolicy()] == 1
        assert groups[SearchPolicy(mode="approx", nprobe="auto")] == 3


class TestShardSummary:
    def test_payload_round_trip(self, clustered):
        _db, _queries, mapping, blocks = clustered
        summary = ShardSummary.from_vectors(
            mapping.database_vectors[blocks[0]]
        )
        restored = ShardSummary.from_payload(
            json.loads(json.dumps(summary.to_payload())),
            mapping.dimensionality,
        )
        assert restored.num_rows == summary.num_rows
        assert restored.radius == summary.radius
        assert np.array_equal(restored.centroid, summary.centroid)
        assert np.array_equal(restored.dim_min, summary.dim_min)
        assert np.array_equal(restored.dim_max, summary.dim_max)

    def test_payload_dimension_mismatch_rejected(self, clustered):
        _db, _queries, mapping, blocks = clustered
        summary = ShardSummary.from_vectors(
            mapping.database_vectors[blocks[0]]
        )
        with pytest.raises(QueryError, match="dimensionality"):
            ShardSummary.from_payload(
                summary.to_payload(), mapping.dimensionality + 1
            )

    def test_bounds_never_exceed_true_minimum(self, clustered):
        """The load-bearing invariant, on real mined embeddings (the
        hypothesis suite fuzzes it on adversarial vectors)."""
        _db, per_cluster_queries, mapping, blocks = clustered
        engine = mapping.query_engine()
        queries = [q for qs in per_cluster_queries for q in qs]
        vectors = engine.embed_many(queries)
        summaries = summaries_for_blocks(mapping, blocks)
        bounds, _centroid_d = shard_lower_bounds(
            vectors, summaries, mapping.dimensionality
        )
        distances = mapping.query_distances(vectors)
        for qi in range(len(queries)):
            for si, block in enumerate(blocks):
                true_min = distances[qi, block].min()
                assert bounds[qi, si] <= true_min + 1e-12


class TestExactIdentity:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 40])
    def test_matches_engine_across_shard_counts(self, random_setup, n_shards):
        queries, mapping = random_setup
        reference = mapping.query_engine().batch_query(queries, 7)
        with mapping.query_service(n_shards=n_shards) as service:
            _assert_identical(
                reference, service.batch_query(queries, 7, SearchPolicy())
            )

    def test_tie_heavy_identity(self, random_setup):
        queries, mapping = random_setup
        tie_mapping = mapping_from_selection(
            mapping.space, variance_selection(mapping.space, 3)
        )
        reference = tie_mapping.query_engine().batch_query(queries, 9)
        with tie_mapping.query_service(n_shards=4) as service:
            _assert_identical(reference, service.batch_query(queries, 9))

    def test_clustered_batches_skip_shards_and_stay_identical(
        self, clustered
    ):
        _db, per_cluster_queries, mapping, blocks = clustered
        engine = mapping.query_engine()
        with QueryService(engine, shards=blocks, n_workers=0) as service:
            batches = 0
            for cluster_queries in per_cluster_queries:
                reference = engine.batch_query(cluster_queries, 5)
                result, _gen, trace = service.batch_query_traced(
                    cluster_queries, 5
                )
                _assert_identical(reference, result.results)
                batches += 1
            # Identity alone could hold with pruning broken-off; the
            # counters prove shards really were skipped wholesale.
            assert service.stats.shards_skipped > 0
            assert service.stats.bound_checks > 0
            assert (
                service.stats.shard_tasks + service.stats.shards_skipped
                == batches * len(blocks)
            )

    def test_prune_disabled_is_identical_and_computes_everything(
        self, clustered
    ):
        _db, per_cluster_queries, mapping, blocks = clustered
        engine = mapping.query_engine()
        queries = per_cluster_queries[0]
        with QueryService(engine, shards=blocks, n_workers=0) as service:
            pruned = service.batch_query(queries, 5)
            full = service.batch_query(queries, 5, SearchPolicy(prune=False))
            _assert_identical(pruned, full)
            # The full-scan pass computed every block.
            assert service.stats.shard_tasks >= len(blocks)

    def test_identity_after_apply_update(self, clustered):
        db, per_cluster_queries, _mapping, _blocks = clustered
        # A private mapping: apply_update mutates supports in place.
        _db2, queries2, mapping, blocks = make_clustered()
        extra = [
            offset_graph(g, 0)
            for g in synthetic_query_set(
                2, avg_edges=14, density=0.3, num_labels=NUM_LABELS, seed=900
            )
        ]
        with QueryService(
            mapping.query_engine(), shards=blocks, n_workers=0
        ) as service:
            before = [
                shard.summary for shard in service.shards
            ]
            service.apply_update(added=extra, removed=[0, 13])
            # Untouched shards keep their summary object (maintained,
            # not recomputed); mutated ones were rebuilt.
            reused = sum(
                1
                for shard in service.shards
                if any(shard.summary is s for s in before)
            )
            assert 0 < reused < len(service.shards)
            reference = mapping.query_engine().batch_query(queries2[1], 5)
            result, _gen, trace = service.batch_query_traced(queries2[1], 5)
            _assert_identical(reference, result.results)
            assert int(trace.skipped.sum()) > 0

    def test_parallel_shard_pool_path_identical(self, clustered):
        """The hybrid seed-then-parallel path (multi-core hosts): the
        most promising shard seeds the thresholds sequentially, the
        rest run on the shard pool off one-shot skip decisions — still
        bit-identical, and every shard still accounted for."""
        _db, per_cluster_queries, mapping, blocks = clustered
        engine = mapping.query_engine()
        service = QueryService(
            engine, shards=blocks, n_workers=2, embed_mode="serial"
        )
        service._parallel_shards = True  # force past the 1-CPU gate
        try:
            for cluster_queries in per_cluster_queries:
                reference = engine.batch_query(cluster_queries, 5)
                result, _gen, trace = service.batch_query_traced(
                    cluster_queries, 5
                )
                _assert_identical(reference, result.results)
                assert (
                    (trace.visited + trace.skipped) == len(blocks)
                ).all()
            approx = service.batch_query(
                per_cluster_queries[0], 5,
                SearchPolicy(mode="approx", nprobe=len(blocks)),
            )
            _assert_identical(
                engine.batch_query(per_cluster_queries[0], 5),
                approx.results,
            )
        finally:
            service.close()

    def test_parallel_seedless_feasibility_path_identical(
        self, random_setup
    ):
        """On data where no bound could ever prune, the parallel path
        skips the serialized threshold seed entirely (the feasibility
        precheck) and still answers bit-identically."""
        queries, mapping = random_setup
        engine = mapping.query_engine()
        reference = engine.batch_query(queries, 7)
        service = QueryService(
            engine, n_shards=4, n_workers=2, embed_mode="serial"
        )
        service._parallel_shards = True  # force past the 1-CPU gate
        try:
            result, _gen, trace = service.batch_query_traced(queries, 7)
            _assert_identical(reference, result.results)
            assert (
                (trace.visited + trace.skipped) == len(service.shards)
            ).all()
        finally:
            service.close()

    def test_trace_accounts_for_every_shard(self, clustered):
        _db, per_cluster_queries, mapping, blocks = clustered
        with QueryService(
            mapping.query_engine(), shards=blocks, n_workers=0
        ) as service:
            _result, _gen, trace = service.batch_query_traced(
                per_cluster_queries[1], 5
            )
            per_query = trace.visited + trace.skipped
            assert (per_query == len(blocks)).all()
            assert (trace.bound_checks == len(blocks)).all()

    def test_empty_batch_trace(self, random_setup):
        _queries, mapping = random_setup
        with mapping.query_service(n_shards=3) as service:
            result, _gen, trace = service.batch_query_traced([], 5)
            assert len(result) == 0
            assert trace.totals()["shards_visited"] == 0


class TestApproxMode:
    def test_nprobe_all_shards_equals_exact(self, random_setup):
        queries, mapping = random_setup
        reference = mapping.query_engine().batch_query(queries, 6)
        with mapping.query_service(n_shards=4) as service:
            result = service.batch_query(
                queries, 6, SearchPolicy(mode="approx", nprobe=4)
            )
            _assert_identical(reference, result.results)

    def test_nprobe_bounds_visits_and_keeps_recall(self, clustered):
        _db, per_cluster_queries, mapping, blocks = clustered
        engine = mapping.query_engine()
        k = 5
        overlaps = []
        with QueryService(engine, shards=blocks, n_workers=0) as service:
            for cluster_queries in per_cluster_queries:
                reference = engine.batch_query(cluster_queries, k)
                result, _gen, trace = service.batch_query_traced(
                    cluster_queries, k, SearchPolicy(mode="approx", nprobe=1)
                )
                assert (trace.visited <= 1).all()
                assert trace.nprobe == 1
                overlaps.extend(
                    len(set(a.ranking) & set(b.ranking)) / k
                    for a, b in zip(reference, result.results)
                )
        # Label-disjoint clusters: the routed shard holds the answers.
        assert np.mean(overlaps) >= 0.9

    def test_routing_extends_past_tiny_shards_to_fill_k(
        self, random_setup
    ):
        """nprobe routed shards holding < k rows must not shorten the
        answer: routing widens until k rows are covered."""
        queries, mapping = random_setup
        n = mapping.database_vectors.shape[0]
        shards = [np.array([0]), np.array([1]), np.arange(2, n)]
        with mapping.query_service(shards=shards) as service:
            result, _gen, trace = service.batch_query_traced(
                queries[:4], 5, SearchPolicy(mode="approx", nprobe=1)
            )
            for answer in result.results:
                assert len(answer.ranking) == 5
                assert len(answer.scores) == 5
            # Coverage, not a blanket widening: at most the two tiny
            # shards plus the big one are ever needed for 5 rows.
            assert (trace.visited + trace.skipped == len(shards)).all()

    def test_oversized_nprobe_is_clamped(self, random_setup):
        queries, mapping = random_setup
        reference = mapping.query_engine().batch_query(queries, 4)
        with mapping.query_service(n_shards=3) as service:
            result, _gen, trace = service.batch_query_traced(
                queries, 4, SearchPolicy(mode="approx", nprobe=99)
            )
            _assert_identical(reference, result.results)
            assert trace.nprobe == 3

    def test_auto_nprobe_keeps_recall_on_routable_traffic(self, clustered):
        """The adaptive stop rule must not trade recall for probes on
        traffic the partitions can actually route."""
        _db, per_cluster_queries, mapping, blocks = clustered
        engine = mapping.query_engine()
        k = 5
        overlaps = []
        with QueryService(engine, shards=blocks, n_workers=0) as service:
            for cluster_queries in per_cluster_queries:
                reference = engine.batch_query(cluster_queries, k)
                result, _gen, trace = service.batch_query_traced(
                    cluster_queries, k,
                    SearchPolicy(mode="approx", nprobe="auto"),
                )
                assert trace.nprobe == "auto"
                assert trace.effective_nprobe is not None
                assert (trace.effective_nprobe >= 1).all()
                assert (trace.effective_nprobe <= len(blocks)).all()
                # The trace reports the probes actually spent.
                np.testing.assert_array_equal(
                    trace.effective_nprobe, trace.visited
                )
                for answer in result.results:
                    assert len(answer.ranking) == k
                overlaps.extend(
                    len(set(a.ranking) & set(b.ranking)) / k
                    for a, b in zip(reference, result.results)
                )
        assert np.mean(overlaps) >= 0.9

    def test_auto_nprobe_stops_early_on_clustered_queries(self, clustered):
        """Cluster-homed queries satisfy the bound after their home
        shard: the mean probe count must sit below a full sweep."""
        _db, per_cluster_queries, mapping, blocks = clustered
        with QueryService(
            mapping.query_engine(), shards=blocks, n_workers=0
        ) as service:
            queries = [q for block in per_cluster_queries for q in block]
            _result, _gen, trace = service.batch_query_traced(
                queries, 3, SearchPolicy(mode="approx", nprobe="auto")
            )
            assert trace.effective_nprobe.mean() < len(blocks)


class TestDSPMapRouting:
    def test_route_queries_points_home(self, clustered):
        _db, per_cluster_queries, mapping, _blocks = clustered
        db = _db
        incidence = mapping.space.incidence.astype(float)

        def hamming(i: int, j: int) -> float:
            return float(np.abs(incidence[i] - incidence[j]).sum())

        solver = DSPMap(10, partition_size=14, seed=0)
        solver.fit(mapping.space, db, delta_fn=hamming)
        assert len(solver.partitions_) > 1
        engine = mapping.query_engine()
        queries = [qs[0] for qs in per_cluster_queries]
        vectors = engine.embed_many(queries)
        routes = solver.route_queries(mapping, vectors, nprobe=2)
        assert routes.shape == (len(queries), 2)
        # Routing is deterministic and in-range.
        assert np.array_equal(
            routes, solver.route_queries(mapping, vectors, nprobe=2)
        )
        assert routes.min() >= 0
        assert routes.max() < len(solver.partitions_)
        # The routed partitions and the service's approx mode agree:
        # serving over the same partitions with nprobe=1 stays inside
        # each query's first-choice block.
        with QueryService(
            engine, shards=solver.partitions_, n_workers=0
        ) as service:
            result, _gen, _trace = service.batch_query_traced(
                queries, 3, SearchPolicy(mode="approx", nprobe=1)
            )
            for qi, answer in enumerate(result.results):
                block = {
                    int(i) for i in solver.partitions_[int(routes[qi, 0])]
                }
                assert set(answer.ranking) <= block

    def test_route_queries_requires_fit(self, clustered):
        _db, _queries, mapping, _blocks = clustered
        with pytest.raises(SelectionError, match="fit"):
            DSPMap(5).route_queries(mapping, np.zeros((1, 4)), 1)

    def test_route_queries_rejects_bad_nprobe(self, clustered):
        db, _queries, mapping, _blocks = clustered
        incidence = mapping.space.incidence.astype(float)
        solver = DSPMap(10, partition_size=14, seed=0)
        solver.fit(
            mapping.space, db,
            delta_fn=lambda i, j: float(
                np.abs(incidence[i] - incidence[j]).sum()
            ),
        )
        with pytest.raises(SelectionError, match="nprobe"):
            solver.route_queries(mapping, np.zeros((1, 4)), 0)


class TestArtifactSummaries:
    def test_summaries_persist_and_cold_start_without_rebuilds(
        self, tmp_path, clustered
    ):
        _db, per_cluster_queries, _mapping, _blocks = clustered
        _db2, queries2, mapping, blocks = make_clustered()
        with QueryService(
            mapping.query_engine(), shards=blocks, n_workers=0
        ) as service:
            reference = service.batch_query(queries2[0], 5)
        path = tmp_path / "index.json"
        save_index(mapping, path)
        manifest = json.loads(path.read_text())
        assert manifest["shard_summaries"]["seq"] == 0
        assert len(manifest["shard_summaries"]["layouts"]) >= 1

        loaded = load_index(path)
        builds_before = ShardSummary.builds
        with QueryService(
            loaded.query_engine(), shards=blocks, n_workers=0
        ) as service:
            # Cold start pays zero summary recomputation ...
            assert ShardSummary.builds == builds_before
            # ... and serves the same bits.
            _assert_identical(
                reference, service.batch_query(queries2[0], 5)
            )

    def test_pre_summary_artifacts_load_and_backfill_on_save(
        self, tmp_path
    ):
        """A v3 manifest written before this PR has no summaries: it
        must load, compute lazily once, and persist on the next save."""
        _db, queries, mapping, blocks = make_clustered()
        path = tmp_path / "index.json"
        save_index(mapping, path)
        manifest = json.loads(path.read_text())
        manifest.pop("shard_summaries", None)
        path.write_text(json.dumps(manifest))

        loaded = load_index(path)
        assert loaded.shard_summary_cache == {}
        builds_before = ShardSummary.builds
        with QueryService(
            loaded.query_engine(), shards=blocks, n_workers=0
        ) as service:
            service.batch_query(queries[0], 5)
        assert ShardSummary.builds > builds_before  # computed lazily once
        save_index(loaded, path)  # no mutations: a pure delta-path save
        manifest = json.loads(path.read_text())
        assert "shard_summaries" in manifest

        reloaded = load_index(path)
        builds_before = ShardSummary.builds
        with QueryService(
            reloaded.query_engine(), shards=blocks, n_workers=0
        ) as service:
            assert ShardSummary.builds == builds_before

    def test_summaries_follow_updates_through_the_journal(self, tmp_path):
        _db, queries, mapping, blocks = make_clustered()
        path = tmp_path / "index.json"
        service = QueryService(
            mapping.query_engine(), shards=blocks, n_workers=0
        )
        try:
            save_index(mapping, path)
            extra = [
                offset_graph(g, NUM_LABELS)
                for g in synthetic_query_set(
                    2, avg_edges=14, density=0.3,
                    num_labels=NUM_LABELS, seed=901,
                )
            ]
            service.apply_update(added=extra, removed=[1])
            reference = service.batch_query(queries[1], 5)
            save_index(mapping, path)  # delta append + summary refresh
            manifest = json.loads(path.read_text())
            assert manifest["shard_summaries"]["seq"] == 2  # add + remove
        finally:
            service.close()

        loaded = load_index(path)
        layout = next(iter(loaded.shard_summary_cache))
        builds_before = ShardSummary.builds
        with QueryService(
            loaded.query_engine(),
            shards=[np.asarray(block) for block in layout],
            n_workers=0,
        ) as fresh:
            assert ShardSummary.builds == builds_before
            _assert_identical(reference, fresh.batch_query(queries[1], 5))

    def test_stale_summary_seq_is_dropped_silently(self, tmp_path):
        """An *intact* section whose seq names a different journal
        position (a writer that appended deltas without syncing the
        manifest) is dropped, not trusted and not fatal."""
        from repro.index.artifact import _entry_digest

        _db, queries, mapping, blocks = make_clustered()
        path = tmp_path / "index.json"
        with QueryService(
            mapping.query_engine(), shards=blocks, n_workers=0
        ):
            pass
        save_index(mapping, path)
        manifest = json.loads(path.read_text())
        section = manifest["shard_summaries"]
        section["seq"] = 7  # a journal that never was ...
        del section["sha256"]
        section["sha256"] = _entry_digest(section)  # ... but intact
        path.write_text(json.dumps(manifest))
        loaded = load_index(path)
        assert loaded.shard_summary_cache == {}

    def test_tampered_summary_geometry_fails_the_checksum(self, tmp_path):
        """A shrunken radius would make exact mode silently mis-prune;
        the section checksum turns that into a loud load failure."""
        from repro.utils.errors import ChecksumError

        _db, _queries, mapping, blocks = make_clustered()
        path = tmp_path / "index.json"
        with QueryService(
            mapping.query_engine(), shards=blocks, n_workers=0
        ):
            pass
        save_index(mapping, path)
        manifest = json.loads(path.read_text())
        layout = manifest["shard_summaries"]["layouts"][0]
        layout["summaries"][0]["radius"] *= 0.1
        path.write_text(json.dumps(manifest))
        with pytest.raises(ChecksumError):
            load_index(path)

    def test_corrupt_summary_section_fails_loudly(self, tmp_path):
        from repro.index.artifact import _entry_digest

        _db, _queries, mapping, blocks = make_clustered()
        path = tmp_path / "index.json"
        with QueryService(
            mapping.query_engine(), shards=blocks, n_workers=0
        ):
            pass
        save_index(mapping, path)
        manifest = json.loads(path.read_text())
        section = manifest["shard_summaries"]
        section["layouts"][0]["blocks"] = [[0, 1]]  # not a partition
        del section["sha256"]
        section["sha256"] = _entry_digest(section)  # checksum-valid junk
        path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactCorruptError):
            load_index(path)


class TestProtocol:
    def test_search_field_parsed(self):
        request = protocol.parse_request(
            json.dumps({
                "op": "query", "id": 1, "k": 3,
                "graph": {"vertices": ["0"], "edges": []},
                "search": {"mode": "approx", "nprobe": 2},
            })
        )
        policy = protocol.search_policy_from_request(request)
        assert policy == SearchPolicy(mode="approx", nprobe=2)

    def test_auto_nprobe_parses(self):
        request = protocol.parse_request(
            json.dumps({
                "op": "query", "id": 1, "k": 3,
                "graph": {"vertices": ["0"], "edges": []},
                "search": {"mode": "approx", "nprobe": "auto"},
            })
        )
        policy = protocol.search_policy_from_request(request)
        assert policy == SearchPolicy(mode="approx", nprobe="auto")

    def test_missing_search_means_none(self):
        assert protocol.search_policy_from_request({"op": "query"}) is None

    def test_non_object_search_rejected(self):
        with pytest.raises(ProtocolError, match="'search'"):
            protocol.parse_request(
                json.dumps({
                    "op": "query", "id": 1, "k": 3,
                    "graph": {"vertices": ["0"], "edges": []},
                    "search": "approx",
                })
            )

    @pytest.mark.parametrize(
        "section",
        [
            {"mode": "fuzzy"},
            {"mode": "approx"},
            {"mode": "approx", "nprobe": 0},
            {"mode": "approx", "nprobe": True},
            {"mode": "approx", "nprobe": "2"},
            {"mode": "exact", "nprobe": 2},
            {"prune": "no"},
            {"mode": "exact", "turbo": True},
        ],
    )
    def test_bad_search_sections_rejected(self, section):
        with pytest.raises(ProtocolError):
            protocol.search_policy_from_request({"search": section})


class TestFrontendPolicies:
    @pytest.fixture()
    def materials(self, clustered):
        _db, per_cluster_queries, mapping, blocks = clustered
        service = QueryService(
            mapping.query_engine(), shards=blocks, n_workers=0
        )
        return per_cluster_queries, mapping, service

    @pytest.mark.asyncio
    @pytest.mark.timeout(30)
    async def test_per_response_pruning_stats(self, materials):
        per_cluster_queries, mapping, service = materials
        frontend = AsyncFrontend(service, own_service=True)
        engine = mapping.query_engine()
        try:
            await frontend.start()
            q = per_cluster_queries[0][0]
            wire = protocol.graph_to_wire(q)
            response = await frontend.handle_request({
                "op": "query", "id": "p1", "k": 3, "graph": wire,
            })
            assert response["ok"]
            truth = engine.query(q, 3)
            assert response["ranking"] == truth.ranking
            assert response["scores"] == truth.scores
            pruning = response["pruning"]
            assert pruning["mode"] == "exact"
            assert (
                pruning["shards_visited"] + pruning["shards_skipped"]
                == len(service.shards)
            )
            approx = await frontend.handle_request({
                "op": "query", "id": "p2", "k": 3, "graph": wire,
                "search": {"mode": "approx", "nprobe": 1},
            })
            assert approx["ok"]
            assert approx["pruning"]["mode"] == "approx"
            assert approx["pruning"]["nprobe"] == 1
            assert approx["pruning"]["shards_visited"] <= 1
            bad = await frontend.handle_request({
                "op": "query", "id": "p3", "k": 3, "graph": wire,
                "search": {"mode": "warp"},
            })
            assert not bad["ok"]
            assert bad["error"] == "bad_request"
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    @pytest.mark.timeout(30)
    async def test_auto_tier_reports_effective_nprobe(self, materials):
        per_cluster_queries, _mapping, service = materials
        frontend = AsyncFrontend(service, own_service=True)
        try:
            await frontend.start()
            q = per_cluster_queries[0][0]
            response = await frontend.handle_request({
                "op": "query", "id": "a1", "k": 3,
                "graph": protocol.graph_to_wire(q),
                "search": {"mode": "approx", "nprobe": "auto"},
            })
            assert response["ok"]
            assert len(response["ranking"]) == 3
            pruning = response["pruning"]
            assert pruning["mode"] == "approx"
            assert pruning["nprobe"] == "auto"
            # One query: the mean over the slice IS its probe count.
            assert 1 <= pruning["effective_nprobe"] <= len(service.shards)
            assert pruning["shards_visited"] == pruning["effective_nprobe"]
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    @pytest.mark.timeout(30)
    async def test_mixed_policies_coalesce_separately(self, materials):
        per_cluster_queries, mapping, service = materials
        frontend = AsyncFrontend(
            service,
            FrontendConfig(batch_size=8, batch_window=0.05),
            own_service=True,
        )
        engine = mapping.query_engine()
        queries = [qs[0] for qs in per_cluster_queries]
        try:
            await frontend.start()
            import asyncio

            exact_tasks = [
                asyncio.ensure_future(frontend.submit_traced([q], 4))
                for q in queries
            ]
            approx_tasks = [
                asyncio.ensure_future(
                    frontend.submit_traced(
                        [q], 4,
                        policy=SearchPolicy(mode="approx", nprobe=1),
                    )
                )
                for q in queries
            ]
            done = await asyncio.gather(*exact_tasks, *approx_tasks)
            for (results, _gen, pruning), q in zip(
                done[: len(queries)], queries
            ):
                truth = engine.query(q, 4)
                assert results[0].ranking == truth.ranking
                assert results[0].scores == truth.scores
                assert pruning["mode"] == "exact"
            for (_results, _gen, pruning), _q in zip(
                done[len(queries):], queries
            ):
                assert pruning["mode"] == "approx"
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    @pytest.mark.timeout(30)
    async def test_config_default_policy_applies(self, materials):
        per_cluster_queries, _mapping, service = materials
        frontend = AsyncFrontend(
            service,
            FrontendConfig(
                default_policy=SearchPolicy(mode="approx", nprobe=1)
            ),
            own_service=True,
        )
        try:
            await frontend.start()
            wire = protocol.graph_to_wire(per_cluster_queries[0][0])
            response = await frontend.handle_request({
                "op": "query", "id": 1, "k": 3, "graph": wire,
            })
            assert response["ok"]
            assert response["pruning"]["mode"] == "approx"
            # A request-level policy overrides the server default.
            override = await frontend.handle_request({
                "op": "query", "id": 2, "k": 3, "graph": wire,
                "search": {"mode": "exact"},
            })
            assert override["ok"]
            assert override["pruning"]["mode"] == "exact"
        finally:
            await frontend.aclose()

    def test_stats_payload_carries_pruning_counters(self, materials):
        _queries, _mapping, service = materials
        frontend = AsyncFrontend(service, own_service=True)
        payload = frontend.stats_payload()
        assert "shards_skipped" in payload["service"]
        assert "bound_checks" in payload["service"]
        service.close()


class TestPruningTrace:
    def test_full_scan_trace_shape(self):
        trace = PruningTrace.full_scan(3, 4)
        assert trace.totals() == {
            "mode": "exact",
            "shards_visited": 12,
            "shards_skipped": 0,
            "bound_checks": 0,
        }

    def test_slice_payload_partitions_totals(self):
        trace = PruningTrace(
            mode="exact",
            nprobe=None,
            visited=np.array([1, 2, 3]),
            skipped=np.array([3, 2, 1]),
            bound_checks=np.array([4, 4, 4]),
        )
        first = trace.slice_payload(0, 1)
        rest = trace.slice_payload(1, 3)
        totals = trace.totals()
        for key in ("shards_visited", "shards_skipped", "bound_checks"):
            assert first[key] + rest[key] == totals[key]
