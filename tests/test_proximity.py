"""Behaviour tests for the navigable proximity graph (graph-ANN tier).

The tier's contract, in order of importance:

* the canonical structure — incremental maintenance (appends, removals,
  mixed churn) produces neighbor tables **bit-identical** to a scratch
  rebuild, so graph-mode answers are reproducible under any update
  history;
* beam-search quality is monotone in the knob — recall never decreases
  as ``ef`` grows (a hypothesis property, guaranteed by construction:
  ``ef`` enters the search only through the termination test);
* persistence — the checksummed v3 manifest section round-trips without
  triggering a KNN rebuild, fails loudly when corrupted, and is
  silently dropped (then lazily rebuilt) when it is stale;
* the serving plumbing — ``SearchPolicy(mode="graph")`` dispatches end
  to end, and malformed policies fail with structured errors that
  enumerate every accepted mode.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.mapping import mapping_from_selection
from repro.features.binary_matrix import FeatureSpace
from repro.graph.labeled_graph import LabeledGraph
from repro.index import load_index, save_index
from repro.index.artifact import _entry_digest
from repro.mining.gspan import FrequentSubgraph
from repro.query.proximity import ProximityGraph, _entry_points
from repro.query.pruning import SEARCH_MODES, SearchPolicy, default_ef
from repro.serving import protocol
from repro.serving.service import QueryService
from repro.utils.errors import ChecksumError, ProtocolError, QueryError


def _binary_vectors(rng, n, p):
    return rng.integers(0, 2, size=(n, p)).astype(float)


def _exact_topk(vectors, query, k):
    """Ground-truth (distance, id)-ordered top-k by brute force."""
    p = vectors.shape[1]
    diff = vectors - query[None, :]
    d = np.sqrt((diff**2).sum(axis=1) / p) if p else np.zeros(len(vectors))
    order = np.lexsort((np.arange(len(d)), d))[:k]
    return [int(i) for i in order], [float(d[i]) for i in order]


def _vector_mapping(vectors):
    """A real mapping over raw binary *vectors* (single-vertex features)."""
    n, p = vectors.shape
    features = [
        FrequentSubgraph(
            LabeledGraph([f"d{j}"], graph_id=f"d{j}"),
            {int(i) for i in np.flatnonzero(vectors[:, j])},
        )
        for j in range(p)
    ]
    return mapping_from_selection(FeatureSpace(features, n), list(range(p)))


def _row_graph(row, graph_id):
    dims = np.flatnonzero(row)
    if dims.size == 0:
        dims = np.array([0])
    return LabeledGraph([f"d{int(j)}" for j in dims], graph_id=graph_id)


class TestBuildAndSearch:
    def test_exhaustive_beam_equals_brute_force(self):
        rng = np.random.default_rng(7)
        vectors = _binary_vectors(rng, 40, 12)
        graph = ProximityGraph.build(vectors, max_degree=4)
        query = _binary_vectors(rng, 1, 12)[0]
        # ef = n keeps the tracker threshold at None until every row is
        # seen, and the entry points + tree backbone keep the graph
        # connected — so the beam degenerates to an exact scan.
        ranking, scores, hops, evals = graph.search(query, k=5, ef=40)
        truth_ids, truth_scores = _exact_topk(vectors, query, 5)
        assert ranking == truth_ids
        assert scores == truth_scores
        assert evals == 40  # every row evaluated exactly once
        assert hops > 0

    def test_search_reports_work_counters(self):
        rng = np.random.default_rng(3)
        vectors = _binary_vectors(rng, 60, 10)
        graph = ProximityGraph.build(vectors)
        _r, _s, hops, evals = graph.search(vectors[17], k=3, ef=8)
        assert 0 < evals <= 60
        assert hops >= 1

    def test_singleton_and_empty_databases(self):
        graph = ProximityGraph.build(np.ones((1, 4)))
        ranking, scores, _hops, evals = graph.search(np.ones(4), k=3, ef=2)
        assert ranking == [0] and scores == [0.0] and evals == 1
        empty = ProximityGraph.build(np.zeros((0, 4)))
        assert empty.search(np.zeros(4), k=3, ef=2) == ([], [], 0, 0)

    def test_bad_max_degree_rejected(self):
        with pytest.raises(QueryError):
            ProximityGraph.build(np.ones((3, 2)), max_degree=0)

    def test_neighbors_are_undirected_and_deduplicated(self):
        rng = np.random.default_rng(11)
        vectors = _binary_vectors(rng, 30, 8)
        graph = ProximityGraph.build(vectors, max_degree=3)
        for node in (0, 7, 29):
            nb = graph.neighbors(node)
            assert node not in nb
            assert len(nb) == len(set(nb.tolist()))
            # out-links always included
            assert set(graph.knn_ids[node].tolist()) <= set(nb.tolist())
        # reverse reachability: anyone listing `node` sees it back
        listed_by = int(graph.knn_ids[5][0])
        assert 5 in graph.neighbors(listed_by) or listed_by in (
            graph.neighbors(5).tolist()
        )

    def test_entry_points_are_canonical(self):
        for n in (1, 2, 9, 100, 2000):
            entries = _entry_points(n)
            assert entries[0] == 0
            assert np.array_equal(entries, np.unique(entries))
            assert entries.min() >= 0 and entries.max() < n
            # pure function of n: identical across calls
            assert np.array_equal(entries, _entry_points(n))
        assert _entry_points(100)[-1] == 99  # strided ends at the last row


class TestIncrementalMaintenance:
    def test_append_matches_scratch_across_degree_cap(self):
        rng = np.random.default_rng(21)
        vectors = _binary_vectors(rng, 4, 6)
        graph = ProximityGraph.build(vectors, max_degree=8)
        # grow through the m = n-1 < max_degree regime and past it
        for extra in (2, 3, 8):
            vectors = np.vstack([vectors, _binary_vectors(rng, extra, 6)])
            graph = graph.with_appended(vectors)
            scratch = ProximityGraph.build(vectors, max_degree=8)
            assert np.array_equal(graph.knn_ids, scratch.knn_ids)
            assert np.array_equal(graph.knn_dists, scratch.knn_dists)

    def test_removal_matches_scratch(self):
        rng = np.random.default_rng(22)
        vectors = _binary_vectors(rng, 30, 8)
        graph = ProximityGraph.build(vectors, max_degree=4)
        removed = [0, 7, 13, 29]
        survivors = np.setdiff1d(np.arange(30), removed)
        graph = graph.with_removed(removed, vectors[survivors])
        scratch = ProximityGraph.build(vectors[survivors], max_degree=4)
        assert np.array_equal(graph.knn_ids, scratch.knn_ids)
        assert np.array_equal(graph.knn_dists, scratch.knn_dists)

    def test_mixed_churn_matches_scratch(self):
        rng = np.random.default_rng(23)
        vectors = _binary_vectors(rng, 20, 6)
        graph = ProximityGraph.build(vectors, max_degree=5)
        for step in range(4):
            removed = sorted(
                int(i)
                for i in rng.choice(len(vectors), size=3, replace=False)
            )
            vectors = np.delete(vectors, removed, axis=0)
            graph = graph.with_removed(removed, vectors)
            fresh = _binary_vectors(rng, 4, 6)
            vectors = np.vstack([vectors, fresh])
            graph = graph.with_appended(vectors)
            scratch = ProximityGraph.build(vectors, max_degree=5)
            assert np.array_equal(graph.knn_ids, scratch.knn_ids), step
            assert np.array_equal(graph.knn_dists, scratch.knn_dists), step

    def test_payload_round_trip_is_exact_and_buildless(self):
        rng = np.random.default_rng(24)
        vectors = _binary_vectors(rng, 25, 7)
        graph = ProximityGraph.build(vectors, max_degree=4)
        before = ProximityGraph.builds
        back = ProximityGraph.from_payload(
            json.loads(json.dumps(graph.to_payload())), vectors
        )
        assert ProximityGraph.builds == before
        assert np.array_equal(back.knn_ids, graph.knn_ids)
        assert np.array_equal(back.knn_dists, graph.knn_dists)


class TestEfMonotonicity:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 40),
        p=st.integers(1, 10),
        k=st.integers(1, 6),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_recall_non_decreasing_in_ef(self, seed, n, p, k):
        rng = np.random.default_rng(seed)
        k = min(k, n)
        vectors = _binary_vectors(rng, n, p)
        graph = ProximityGraph.build(vectors)
        query = _binary_vectors(rng, 1, p)[0]
        truth = set(_exact_topk(vectors, query, k)[0])
        recalls = []
        for ef in (1, 2, 4, 8, 16, 32, 64):
            ranking, _s, _h, _e = graph.search(query, k, ef)
            recalls.append(len(set(ranking) & truth) / k)
        assert recalls == sorted(recalls), recalls
        # ef >= n leaves the termination threshold unset until the
        # whole (connected) graph is explored: exact recall.
        assert recalls[-1] == 1.0


@pytest.fixture(scope="module")
def saved_graph_index(tmp_path_factory):
    rng = np.random.default_rng(31)
    vectors = _binary_vectors(rng, 24, 6)
    mapping = _vector_mapping(vectors)
    graph = mapping.proximity_graph()
    path = tmp_path_factory.mktemp("prox") / "index"
    save_index(mapping, path)
    return path, vectors, graph


class TestPersistence:
    def test_manifest_carries_checksummed_section(self, saved_graph_index):
        path, _vectors, graph = saved_graph_index
        manifest = json.loads(path.read_text())
        section = manifest["proximity_graph"]
        assert section["seq"] == 0
        assert section["max_degree"] == graph.max_degree
        assert "sha256" in section
        assert np.array_equal(
            np.asarray(section["neighbors"]), graph.knn_ids
        )

    def test_restore_attaches_without_rebuilding(self, saved_graph_index):
        path, vectors, graph = saved_graph_index
        loaded = load_index(path)
        before = ProximityGraph.builds
        restored = loaded.proximity_graph()
        assert ProximityGraph.builds == before  # attach, not rebuild
        assert np.array_equal(restored.knn_ids, graph.knn_ids)
        assert np.array_equal(restored.knn_dists, graph.knn_dists)
        query = vectors[3]
        assert restored.search(query, 5, 16) == graph.search(query, 5, 16)

    def test_corrupt_neighbor_table_fails_loudly(self, tmp_path):
        rng = np.random.default_rng(32)
        mapping = _vector_mapping(_binary_vectors(rng, 16, 5))
        mapping.proximity_graph()
        path = tmp_path / "corrupt-index"
        save_index(mapping, path)
        manifest = json.loads(path.read_text())
        manifest["proximity_graph"]["neighbors"][0][0] = 99
        path.write_text(json.dumps(manifest))
        with pytest.raises(ChecksumError):
            load_index(path)

    def test_stale_seq_is_dropped_then_lazily_rebuilt(self, tmp_path):
        rng = np.random.default_rng(35)
        mapping = _vector_mapping(_binary_vectors(rng, 16, 5))
        graph = mapping.proximity_graph()
        path = tmp_path / "stale-index"
        save_index(mapping, path)
        manifest = json.loads(path.read_text())
        section = manifest["proximity_graph"]
        section["seq"] = 7  # pretend the table predates journal entries
        del section["sha256"]
        section["sha256"] = _entry_digest(section)
        path.write_text(json.dumps(manifest))
        loaded = load_index(path)
        assert loaded.peek_proximity_graph() is None
        before = ProximityGraph.builds
        rebuilt = loaded.proximity_graph()
        assert ProximityGraph.builds == before + 1  # honest rebuild
        assert np.array_equal(rebuilt.knn_ids, graph.knn_ids)

    def test_sectionless_artifact_loads_and_builds_lazily(self, tmp_path):
        rng = np.random.default_rng(33)
        mapping = _vector_mapping(_binary_vectors(rng, 12, 5))
        path = tmp_path / "plain-index"
        save_index(mapping, path)  # graph never built -> no section
        manifest = json.loads(path.read_text())
        assert "proximity_graph" not in manifest
        loaded = load_index(path)
        assert loaded.peek_proximity_graph() is None
        assert loaded.proximity_graph().num_rows == 12

    def test_resave_after_build_backfills_the_section(self, tmp_path):
        rng = np.random.default_rng(34)
        vectors = _binary_vectors(rng, 14, 5)
        mapping = _vector_mapping(vectors)
        path = tmp_path / "backfill-index"
        save_index(mapping, path)
        loaded = load_index(path)
        loaded.proximity_graph()  # built on the pre-PR artifact
        loaded.add_graphs([_row_graph(vectors[0], "extra0")])
        save_index(loaded, path)  # delta save syncs derived sections
        manifest = json.loads(path.read_text())
        section = manifest["proximity_graph"]
        assert section["seq"] == loaded.journal_seq
        assert len(section["neighbors"]) == 15


class TestPolicyValidation:
    def test_unknown_mode_enumerates_all_modes(self):
        with pytest.raises(QueryError) as exc:
            SearchPolicy(mode="fuzzy")
        for mode in SEARCH_MODES:
            assert mode in str(exc.value)

    def test_nprobe_outside_approx_enumerates_modes(self):
        with pytest.raises(QueryError) as exc:
            SearchPolicy(mode="graph", nprobe=2)
        assert "exact, approx, graph" in str(exc.value)

    def test_ef_outside_graph_enumerates_modes(self):
        with pytest.raises(QueryError) as exc:
            SearchPolicy(mode="exact", ef=8)
        assert "exact, approx, graph" in str(exc.value)

    def test_graph_ef_bounds(self):
        assert SearchPolicy(mode="graph").ef is None  # default beam
        assert SearchPolicy(mode="graph", ef=4).ef == 4
        with pytest.raises(QueryError):
            SearchPolicy(mode="graph", ef=0)

    def test_default_ef_scales_with_k(self):
        assert default_ef(1) == 32
        assert default_ef(10) == 40
        assert default_ef(100) == 400


class TestProtocolPlumbing:
    def test_graph_policy_parses(self):
        policy = protocol.search_policy_from_request(
            {"search": {"mode": "graph", "ef": 32}}
        )
        assert policy == SearchPolicy(mode="graph", ef=32)

    def test_unknown_mode_carries_structured_detail(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.search_policy_from_request(
                {"search": {"mode": "hnsw"}}
            )
        assert exc.value.detail == {"allowed_modes": list(SEARCH_MODES)}

    def test_bad_ef_type_rejected(self):
        for ef in ("8", 8.0, True):
            with pytest.raises(ProtocolError):
                protocol.search_policy_from_request(
                    {"search": {"mode": "graph", "ef": ef}}
                )

    def test_error_response_embeds_detail(self):
        response = protocol.error_response(
            3, "bad_request", "nope", detail={"allowed_modes": ["exact"]}
        )
        assert response["detail"] == {"allowed_modes": ["exact"]}
        assert "detail" not in protocol.error_response(3, "bad_request", "x")


class TestServiceDispatch:
    def test_graph_mode_answers_and_counts_work(self):
        rng = np.random.default_rng(41)
        vectors = _binary_vectors(rng, 30, 8)
        mapping = _vector_mapping(vectors)
        with QueryService(
            mapping.query_engine(), n_shards=3, n_workers=0, cache_size=0
        ) as service:
            policy = SearchPolicy(mode="graph", ef=30)
            answers = service.batch_query_vectors(vectors[:4], 5, policy)
            assert service.stats.distance_evaluations > 0
            graph = mapping.peek_proximity_graph()
            assert graph is not None  # built lazily on first graph query
            for qi, got in enumerate(answers):
                ranking, scores, _h, _e = graph.search(vectors[qi], 5, 30)
                assert got.ranking == ranking
                assert got.scores == scores

    def test_trace_reports_effective_beam_width(self):
        """Regression: the engine clamps the beam to ``max(ef, k)``
        before searching, but the trace used to echo the *requested*
        ef — describing a narrower search than the one that ran."""
        rng = np.random.default_rng(43)
        vectors = _binary_vectors(rng, 30, 8)
        mapping = _vector_mapping(vectors)
        with QueryService(
            mapping.query_engine(), n_shards=3, n_workers=0, cache_size=0
        ) as service:
            _answers, trace = service.batch_query_vectors_traced(
                vectors[:3], 5, SearchPolicy(mode="graph", ef=2)
            )
            assert trace.mode == "graph"
            assert trace.ef == 5  # clamped to k, and reported as such
            assert trace.slice_payload(0, 3)["ef"] == 5
            # A request already at or above k passes through verbatim.
            _answers, wide = service.batch_query_vectors_traced(
                vectors[:3], 5, SearchPolicy(mode="graph", ef=12)
            )
            assert wide.ef == 12

    def test_full_scan_counts_every_pair(self):
        rng = np.random.default_rng(42)
        vectors = _binary_vectors(rng, 20, 6)
        mapping = _vector_mapping(vectors)
        with QueryService(
            mapping.query_engine(), n_shards=2, n_workers=0, cache_size=0
        ) as service:
            service.batch_query_vectors(
                vectors[:3], 4, SearchPolicy(prune=False)
            )
            assert service.stats.distance_evaluations == 3 * 20


class TestChurnSoak:
    def test_graph_answers_track_scratch_rebuild_under_churn(self):
        rng = np.random.default_rng(51)
        vectors = _binary_vectors(rng, 40, 8)
        mapping = _vector_mapping(vectors)
        policy = SearchPolicy(mode="graph", ef=24)
        probes = _binary_vectors(rng, 6, 8)
        with QueryService(
            mapping.query_engine(), n_shards=3, n_workers=0, cache_size=0
        ) as service:
            service.batch_query_vectors(probes, 5, policy)  # force build
            for cycle in range(3):
                n = mapping.database_vectors.shape[0]
                removed = sorted(
                    int(i) for i in rng.choice(n, size=4, replace=False)
                )
                added = [
                    _row_graph(
                        _binary_vectors(rng, 1, 8)[0], f"c{cycle}g{gi}"
                    )
                    for gi in range(4)
                ]
                before = ProximityGraph.builds
                service.apply_update(added=added, removed=removed)
                assert ProximityGraph.builds == before  # no full rebuild
                maintained = mapping.peek_proximity_graph()
                scratch = ProximityGraph.build(
                    mapping.database_vectors,
                    max_degree=maintained.max_degree,
                )
                assert np.array_equal(
                    maintained.knn_ids, scratch.knn_ids
                ), cycle
                assert np.array_equal(
                    maintained.knn_dists, scratch.knn_dists
                ), cycle
                answers = service.batch_query_vectors(probes, 5, policy)
                for qi, got in enumerate(answers):
                    ranking, scores, _h, _e = scratch.search(
                        probes[qi], 5, 24
                    )
                    assert got.ranking == ranking, (cycle, qi)
                    assert got.scores == scores, (cycle, qi)
