"""Tests for the shared effectiveness driver and fig7's bucketing."""

import numpy as np
import pytest

from repro.experiments.effectiveness import fingerprint_benchmark, run_effectiveness
from repro.experiments.exp_fig7 import _bucket_queries
from repro.experiments.harness import Scale, build_space
from repro.datasets import chemical_database, chemical_query_set
from repro.similarity import (
    DissimilarityCache,
    cross_dissimilarity_matrix,
    pairwise_dissimilarity_matrix,
)

TINY = Scale(
    name="tiny",
    db_size=14,
    query_count=3,
    num_features=4,
    min_support=0.3,
    max_pattern_edges=2,
    top_ks=(3,),
    dspm_iterations=10,
)


@pytest.fixture(scope="module")
def pieces():
    db = chemical_database(TINY.db_size, seed=3)
    queries = chemical_query_set(TINY.query_count, seed=4)
    space = build_space(db, TINY)
    cache = DissimilarityCache()
    delta_db = pairwise_dissimilarity_matrix(db, cache)
    delta_q = cross_dissimilarity_matrix(queries, db, cache)
    return db, queries, space, delta_db, delta_q


class TestFingerprintBenchmark:
    def test_measures_in_range(self, pieces):
        db, queries, _space, _delta_db, delta_q = pieces
        bench = fingerprint_benchmark(db, queries, delta_q, (3,))
        for measure in ("precision", "kendall_tau", "inverse_rank"):
            assert measure in bench
            assert bench[measure][3] >= 0.0


class TestRunEffectiveness:
    def test_fingerprint_benchmark_mode(self, pieces):
        db, queries, space, delta_db, delta_q = pieces
        result = run_effectiveness(
            db, queries, space, delta_db, delta_q, TINY, seed=0,
            benchmark="fingerprint", algorithms=("DSPM", "Sample"),
        )
        assert set(result["raw"]["precision"]) == {"DSPM", "Sample"}
        assert result["top_ks"] == [3]

    def test_best_benchmark_mode_normalises_winner_to_one(self, pieces):
        db, queries, space, delta_db, delta_q = pieces
        result = run_effectiveness(
            db, queries, space, delta_db, delta_q, TINY, seed=0,
            benchmark="best", algorithms=("DSPM", "Sample"),
        )
        best = max(
            result["relative"]["precision"][name][3]
            for name in ("DSPM", "Sample")
        )
        assert best == pytest.approx(1.0)

    def test_unknown_benchmark_rejected(self, pieces):
        db, queries, space, delta_db, delta_q = pieces
        with pytest.raises(ValueError):
            run_effectiveness(
                db, queries, space, delta_db, delta_q, TINY, seed=0,
                benchmark="oracle", algorithms=("Sample",),
            )


class TestBucketQueries:
    def test_every_query_bucketed_once(self):
        queries = chemical_query_set(12, seed=5)
        buckets, labels = _bucket_queries(queries)
        flat = [qi for bucket in buckets for qi in bucket]
        assert sorted(flat) == list(range(12))
        assert len(labels) == len(buckets)

    def test_buckets_ordered_by_size(self):
        queries = chemical_query_set(12, seed=5)
        buckets, _labels = _bucket_queries(queries)
        previous_max = -1
        for bucket in buckets:
            if not bucket:
                continue
            sizes = [queries[qi].num_vertices for qi in bucket]
            assert min(sizes) >= previous_max - 1  # non-overlapping ranges
            previous_max = max(sizes)
