"""Concurrency soak: clients stream while live updates churn the index.

The strongest serving claim in the repo is that mutation is invisible to
correctness: a batch snapshotted at generation *g* answers **exactly**
like a from-scratch index over the generation-*g* database — same
patterns, supports recomputed by brute-force VF2 — ties, scores and all.

This test hammers that claim from the front-end: N async clients stream
seeded queries through the coalescing dispatcher while an updater task
interleaves ``apply_update`` add/remove churn.  Every response carries
the generation it was computed at; afterwards each one is checked
bit-identical against the scratch rebuild of that exact generation.  No
request may be dropped, fail, or see a torn shard list (a torn list
would surface as a wrong ranking or score for its generation).
"""

import asyncio

import numpy as np
import pytest

from repro.core.mapping import mapping_from_selection
from repro.datasets import synthetic_database, synthetic_query_set
from repro.features.binary_matrix import FeatureSpace
from repro.isomorphism.vf2 import is_subgraph
from repro.mining import mine_frequent_subgraphs
from repro.mining.gspan import FrequentSubgraph
from repro.query.bench import variance_selection
from repro.serving.frontend import AsyncFrontend, FrontendConfig
from repro.serving.service import QueryService

SEED = 7
CLIENTS = 6
QUERIES_PER_CLIENT = 20
K = 7
P = 12


@pytest.fixture(scope="module")
def materials():
    db = synthetic_database(
        30, avg_edges=16, density=0.3, num_labels=5, seed=SEED
    )
    extra = synthetic_query_set(
        6, avg_edges=16, density=0.3, num_labels=5, seed=SEED + 1
    )
    pool = synthetic_query_set(
        12, avg_edges=16, density=0.3, num_labels=5, seed=SEED + 2
    )
    features = mine_frequent_subgraphs(db, min_support=0.2, max_edges=5)
    return db, extra, pool, features


def _fresh_mapping(materials):
    """Pristine supports per test: mutations are in-place."""
    db, _extra, _pool, features = materials
    copies = [FrequentSubgraph(f.graph, set(f.support)) for f in features]
    space = FeatureSpace(copies, len(db))
    return mapping_from_selection(space, variance_selection(space, P))


def _scratch_answers(mapping, generation_db, pool, k):
    """The from-scratch reference for one generation's database: same
    selected patterns, supports recomputed by brute-force VF2."""
    features = [
        FrequentSubgraph(
            f.graph,
            {i for i, g in enumerate(generation_db) if is_subgraph(f.graph, g)},
        )
        for f in mapping.selected_features()
    ]
    space = FeatureSpace(features, len(generation_db))
    scratch = mapping_from_selection(space, list(range(len(features))))
    return scratch.query_engine().batch_query(pool, k)


def _apply_plan(db_state, added, removed):
    """Track the database contents through one update, mirroring
    ``apply_update`` semantics (removals first, pre-update numbering)."""
    survivors = [g for i, g in enumerate(db_state) if i not in set(removed)]
    return survivors + list(added)


def _scratch_answers_for(feature_graphs, generation_db, pool, k):
    """Like :func:`_scratch_answers`, but for an explicit pattern set —
    needed once a background re-selection means different generations
    were served with different selections."""
    features = [
        FrequentSubgraph(
            graph,
            {i for i, g in enumerate(generation_db) if is_subgraph(graph, g)},
        )
        for graph in feature_graphs
    ]
    space = FeatureSpace(features, len(generation_db))
    scratch = mapping_from_selection(space, list(range(len(features))))
    return scratch.query_engine().batch_query(pool, k)


@pytest.mark.timeout(30)
@pytest.mark.asyncio
async def test_soak_streaming_clients_under_update_churn(materials):
    db, extra, pool, _features = materials
    mapping = _fresh_mapping(materials)
    service = QueryService(
        mapping.query_engine(), n_shards=3, n_workers=0, cache_size=256
    )
    frontend = AsyncFrontend(
        service,
        FrontendConfig(batch_size=CLIENTS, batch_window=0.002, max_queue=512),
        own_service=True,
    )

    # The churn plan is fixed up front so each generation's database
    # contents are known exactly.
    plan = [
        ([extra[0], extra[1]], []),
        ([], [3, 7]),
        ([extra[2]], [1]),
        ([extra[3], extra[4]], [0, 5]),
    ]
    db_states = [list(db)]
    for added, removed in plan:
        db_states.append(_apply_plan(db_states[-1], added, removed))

    rng = np.random.default_rng(SEED + 99)
    picks = [
        [int(i) for i in rng.integers(0, len(pool), QUERIES_PER_CLIENT)]
        for _ in range(CLIENTS)
    ]
    observed = []  # (pool_idx, generation, ranking, scores)
    dropped = []

    async def client(ci: int) -> None:
        for pi in picks[ci]:
            try:
                results, generation = await frontend.submit(
                    [pool[pi]], K, tenant=f"client-{ci}"
                )
            except Exception as exc:  # no rejection is acceptable here
                dropped.append((ci, pi, repr(exc)))
                continue
            observed.append(
                (pi, generation, results[0].ranking, results[0].scores)
            )

    async def updater() -> None:
        total = CLIENTS * QUERIES_PER_CLIENT
        for gi, (added, removed) in enumerate(plan, start=1):
            # Interleave: let the stream make progress between updates.
            target = min(gi * total // (len(plan) + 1), total - 1)
            while frontend.stats.completed < target:
                await asyncio.sleep(0.001)
            new_generation = await frontend.apply_update(added, removed)
            assert new_generation == gi

    try:
        await frontend.start()
        await asyncio.wait_for(
            asyncio.gather(updater(), *(client(ci) for ci in range(CLIENTS))),
            timeout=25,
        )
        await frontend.drain()
    finally:
        await frontend.aclose()

    # -- nothing dropped, everything admitted was answered -------------
    assert dropped == []
    assert len(observed) == CLIENTS * QUERIES_PER_CLIENT
    assert frontend.stats.admitted == frontend.stats.completed
    assert frontend.stats.failed == 0
    assert frontend.stats.updates_applied == len(plan)

    # -- the stream really raced the churn ------------------------------
    generations = {generation for _pi, generation, _r, _s in observed}
    assert generations >= {0, len(plan)}, (
        f"stream did not span the churn: saw generations {generations}"
    )

    # -- every answer is bit-identical to a fresh index of its
    #    generation — a torn shard list could not pass this ------------
    for generation in sorted(generations):
        reference = _scratch_answers(
            mapping, db_states[generation], pool, K
        )
        for pi, got_generation, ranking, scores in observed:
            if got_generation != generation:
                continue
            truth = reference[pi]
            assert ranking == truth.ranking, (
                f"generation {generation}, pool query {pi}: ranking "
                f"{ranking} != fresh-built {truth.ranking}"
            )
            assert scores == truth.scores, (
                f"generation {generation}, pool query {pi}: scores diverged"
            )


@pytest.mark.timeout(40)
@pytest.mark.asyncio
async def test_soak_exact_pruning_under_update_churn():
    """The shard-skipping tier under mutation: still bit-exact.

    Clustered database (label-disjoint clusters → block-structured
    embeddings), cluster-sharded service, clients streaming their own
    cluster's queries — the regime where exact mode genuinely skips
    shard blocks — while ``apply_update`` churns rows in and out.
    Every response must be bit-identical to a fresh-built index of its
    generation (summaries maintained through the mutation, never
    stale), and the pruning counters must show shards were actually
    skipped while the churn ran.
    """
    from test_pruning import NUM_LABELS, make_clustered, offset_graph

    from repro.query.pruning import SearchPolicy

    db, per_cluster_queries, mapping, blocks = make_clustered(
        queries_per_cluster=6
    )
    extra = [
        offset_graph(g, (i % 3) * NUM_LABELS)
        for i, g in enumerate(
            synthetic_query_set(
                6, avg_edges=14, density=0.3, num_labels=NUM_LABELS,
                seed=777,
            )
        )
    ]
    service = QueryService(
        mapping.query_engine(), shards=blocks, n_workers=0, cache_size=256
    )
    frontend = AsyncFrontend(
        service,
        FrontendConfig(batch_size=6, batch_window=0.002, max_queue=512),
        own_service=True,
    )
    plan = [
        ([extra[0], extra[1]], []),
        ([], [3, 17]),
        ([extra[2], extra[3]], [1, 20]),
    ]
    db_states = [list(db)]
    for added, removed in plan:
        db_states.append(_apply_plan(db_states[-1], added, removed))

    queries_per_client = 15
    clients = len(per_cluster_queries)
    rng = np.random.default_rng(4242)
    picks = [
        [int(i) for i in rng.integers(0, len(qs), queries_per_client)]
        for qs in per_cluster_queries
    ]
    observed = []  # (cluster, pool idx, generation, ranking, scores)
    pruning_totals = {"shards_visited": 0, "shards_skipped": 0}
    dropped = []

    async def client(ci: int) -> None:
        for pi in picks[ci]:
            try:
                results, generation, pruning = await frontend.submit_traced(
                    [per_cluster_queries[ci][pi]], K,
                    tenant=f"client-{ci}", policy=SearchPolicy(),
                )
            except Exception as exc:
                dropped.append((ci, pi, repr(exc)))
                continue
            pruning_totals["shards_visited"] += pruning["shards_visited"]
            pruning_totals["shards_skipped"] += pruning["shards_skipped"]
            observed.append(
                (ci, pi, generation, results[0].ranking, results[0].scores)
            )

    async def updater() -> None:
        total = clients * queries_per_client
        for gi, (added, removed) in enumerate(plan, start=1):
            target = min(gi * total // (len(plan) + 1), total - 1)
            while frontend.stats.completed < target:
                await asyncio.sleep(0.001)
            assert await frontend.apply_update(added, removed) == gi

    try:
        await frontend.start()
        await asyncio.wait_for(
            asyncio.gather(updater(), *(client(ci) for ci in range(clients))),
            timeout=35,
        )
        await frontend.drain()
    finally:
        await frontend.aclose()

    assert dropped == []
    assert len(observed) == clients * queries_per_client
    assert frontend.stats.failed == 0
    generations = {gen for _c, _p, gen, _r, _s in observed}
    assert generations >= {0, len(plan)}, (
        f"stream did not span the churn: saw generations {generations}"
    )
    # The pruning tier was genuinely active while the index mutated.
    assert pruning_totals["shards_skipped"] > 0, (
        "exact mode never skipped a shard on clustered traffic"
    )

    for generation in sorted(generations):
        for ci, qs in enumerate(per_cluster_queries):
            reference = _scratch_answers(
                mapping, db_states[generation], qs, K
            )
            for c2, pi, got_generation, ranking, scores in observed:
                if c2 != ci or got_generation != generation:
                    continue
                truth = reference[pi]
                assert ranking == truth.ranking, (
                    f"generation {generation}, cluster {ci}, query {pi}: "
                    f"pruned ranking {ranking} != fresh {truth.ranking}"
                )
                assert scores == truth.scores, (
                    f"generation {generation}, cluster {ci}, query {pi}: "
                    "scores diverged under pruning"
                )


@pytest.mark.timeout(60)
@pytest.mark.asyncio
async def test_soak_drift_then_background_heal():
    """The closed staleness loop under live traffic.

    Clients stream while churn pushes selected-support drift past
    ``max_drift``; the front-end's background maintenance loop must
    re-select *off the request path* — no request rejected, dropped, or
    failed — and every answer must stay bit-identical to a fresh-built
    index of its generation, with the pre-heal selection before the
    swap and the post-heal selection after it.
    """
    from test_frontend import _drifting_materials

    mapping, reselector, initial_db, churn = _drifting_materials(
        per_cluster=8
    )
    old_feature_graphs = [f.graph for f in mapping.selected_features()]
    chunks = [churn[: len(churn) // 2], churn[len(churn) // 2:]]
    pool = (initial_db[::4] + churn[::3])[:8]

    service = QueryService(mapping, n_shards=2, n_workers=0, cache_size=256)
    frontend = AsyncFrontend(
        service,
        FrontendConfig(
            batch_size=4,
            batch_window=0.002,
            max_queue=1024,
            maintenance_interval=0.01,
            reselector=reselector,
        ),
        own_service=True,
    )

    stop = asyncio.Event()
    observed = []  # (pool idx, generation, ranking, scores)
    dropped = []
    update_gens = []

    async def client(ci: int) -> None:
        i = 0
        while not stop.is_set():
            pi = (ci + i) % len(pool)
            i += 1
            try:
                results, generation = await frontend.submit(
                    [pool[pi]], 5, tenant=f"client-{ci}"
                )
            except Exception as exc:
                dropped.append((ci, pi, repr(exc)))
                return
            observed.append(
                (pi, generation, results[0].ranking, results[0].scores)
            )

    async def controller() -> None:
        loop = asyncio.get_running_loop()
        while frontend.stats.completed < 20:  # warm stream first
            await asyncio.sleep(0.002)
        for chunk in chunks:
            update_gens.append(await frontend.apply_update(chunk, []))
        assert mapping.stale or service.stats.reselections >= 1
        deadline = loop.time() + 30
        while not (service.stats.reselections >= 1 and not mapping.stale):
            assert loop.time() < deadline, "background heal never landed"
            await asyncio.sleep(0.005)
        # Keep streaming past the heal so post-swap generations are
        # actually observed before the clients stand down.
        settled = frontend.stats.completed
        while frontend.stats.completed < settled + 12:
            await asyncio.sleep(0.002)
        stop.set()

    try:
        await frontend.start()
        await asyncio.wait_for(
            asyncio.gather(controller(), *(client(ci) for ci in range(4))),
            timeout=55,
        )
        await frontend.drain()
    finally:
        await frontend.aclose()

    # -- the loop closed, invisibly to the stream ----------------------
    assert dropped == []
    assert frontend.stats.failed == 0
    assert frontend.stats.rejected_quota == 0
    assert frontend.stats.rejected_overload == 0
    assert frontend.stats.admitted == frontend.stats.completed
    assert frontend.stats.maintenance_runs >= 1
    assert frontend.stats.maintenance_failures == 0
    assert service.stats.reselections == 1
    assert reselector.selections_changed == 1
    assert not mapping.stale

    # -- generation bookkeeping: updates and the heal each own one -----
    final_generation = service.generation
    assert final_generation == len(chunks) + 1
    heal_gens = set(range(1, final_generation + 1)) - set(update_gens)
    assert len(heal_gens) == 1  # exactly the re-selection's bump
    heal_gen = heal_gens.pop()
    generations = {generation for _pi, generation, _r, _s in observed}
    assert min(generations) < heal_gen <= max(generations), (
        f"stream did not span the heal: saw {generations}, "
        f"heal at {heal_gen}"
    )

    # -- bit-identity per generation, selection-aware ------------------
    new_feature_graphs = [f.graph for f in mapping.selected_features()]
    assert [g.graph_id for g in new_feature_graphs] != [
        g.graph_id for g in old_feature_graphs
    ]
    db_states = {0: initial_db}
    state = initial_db
    for gen, chunk in zip(update_gens, chunks):
        state = _apply_plan(state, chunk, [])
        db_states[gen] = state
    for generation in sorted(generations):
        db_gens = [g for g in db_states if g <= generation]
        generation_db = db_states[max(db_gens)]
        feature_graphs = (
            new_feature_graphs if generation >= heal_gen
            else old_feature_graphs
        )
        reference = _scratch_answers_for(
            feature_graphs, generation_db, pool, 5
        )
        for pi, got_generation, ranking, scores in observed:
            if got_generation != generation:
                continue
            truth = reference[pi]
            assert ranking == truth.ranking, (
                f"generation {generation} (heal at {heal_gen}), pool "
                f"query {pi}: {ranking} != fresh-built {truth.ranking}"
            )
            assert scores == truth.scores, (
                f"generation {generation}, pool query {pi}: scores diverged"
            )


@pytest.mark.timeout(30)
@pytest.mark.asyncio
async def test_soak_final_state_matches_scratch_rebuild(materials):
    """After the churn settles, the served index *is* the final database."""
    db, extra, pool, _features = materials
    mapping = _fresh_mapping(materials)
    service = QueryService(mapping.query_engine(), n_shards=2, n_workers=0)
    frontend = AsyncFrontend(service, own_service=True)
    plan = [([extra[5]], [2, 4]), ([extra[0]], [])]
    final_db = list(db)
    for added, removed in plan:
        final_db = _apply_plan(final_db, added, removed)
    try:
        await frontend.start()
        for added, removed in plan:
            await frontend.apply_update(added, removed)
        answers = [
            await frontend.submit([q], K) for q in pool
        ]
    finally:
        await frontend.aclose()
    reference = _scratch_answers(mapping, final_db, pool, K)
    for (results, generation), truth in zip(answers, reference):
        assert generation == len(plan)
        assert results[0].ranking == truth.ranking
        assert results[0].scores == truth.scores
