"""Fault injection for the v3 artifact path, and journal auto-compaction.

Each fault test follows the same arc the ISSUE-4 satellite demands:
inject one precise fault into the on-disk artifact, assert the *exact*
:class:`~repro.utils.errors.ArtifactError` subclass fires on load (never
a silent mis-rank, never a generic exception), then prove a subsequent
full :func:`save_index` from the live mapping repairs the damage — the
journal is reset and a reload answers bit-identically to the live index.
"""

import json

import pytest

from repro.core.mapping import build_mapping
from repro.index import (
    DEFAULT_AUTO_COMPACT_RATIO,
    IndexArtifact,
    compact_index,
    journal_path,
    load_index,
    payload_path,
    save_index,
)
from repro.utils.errors import (
    ChecksumError,
    JournalError,
    ManifestMissingError,
    PayloadMissingError,
)


@pytest.fixture(scope="module")
def built_mapping(small_chemical_db):
    return build_mapping(
        small_chemical_db, num_features=8, min_support=0.2, max_pattern_edges=3
    )


@pytest.fixture()
def mutated(built_mapping, tmp_path, small_chemical_queries):
    """A saved base plus a journal of two mutations, and the live mapping."""
    path = tmp_path / "index.json"
    save_index(built_mapping, path)
    mapping = load_index(path)
    built_mapping.artifact_ref = None  # keep the module fixture pristine
    built_mapping.journal_seq = 0
    mapping.add_graphs(small_chemical_queries[:2])
    save_index(mapping, path)
    mapping.remove_graphs([1, 3])
    save_index(mapping, path)
    assert len(journal_path(path).read_text().splitlines()) == 2
    return path, mapping


def _assert_repaired(path, mapping, queries):
    """A full save from the live mapping must heal the artifact."""
    save_index(mapping, path)
    assert not journal_path(path).exists(), "repair must reset the journal"
    reloaded = load_index(path)
    assert reloaded.space.n == mapping.space.n
    a = mapping.query_engine().batch_query(queries, 5)
    b = reloaded.query_engine().batch_query(queries, 5)
    for x, y in zip(a, b):
        assert x.ranking == y.ranking and x.scores == y.scores


class TestJournalFaults:
    def test_truncated_mid_record(self, mutated, small_chemical_queries):
        path, mapping = mutated
        journal = journal_path(path)
        text = journal.read_text()
        journal.write_text(text[: len(text) // 2])  # cut inside a record
        with pytest.raises(JournalError):
            load_index(path)
        _assert_repaired(path, mapping, small_chemical_queries)

    def test_flipped_byte_in_entry(self, mutated, small_chemical_queries):
        path, mapping = mutated
        journal = journal_path(path)
        lines = journal.read_text().splitlines()
        entry = json.loads(lines[0])
        entry["op"] = "remove" if entry["op"] == "add" else "add"
        lines[0] = json.dumps(entry, sort_keys=True)  # stale checksum
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(ChecksumError):
            load_index(path)
        _assert_repaired(path, mapping, small_chemical_queries)

    def test_reordered_entries(self, mutated, small_chemical_queries):
        path, mapping = mutated
        journal = journal_path(path)
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(reversed(lines)) + "\n")
        with pytest.raises(JournalError, match="out of sequence"):
            load_index(path)
        _assert_repaired(path, mapping, small_chemical_queries)

    def test_journal_from_another_artifact(
        self, mutated, small_chemical_queries
    ):
        path, mapping = mutated
        journal = journal_path(path)
        lines = journal.read_text().splitlines()
        entry = json.loads(lines[0])
        entry["artifact_id"] = "feedfacedeadbeef"
        # Re-checksum so only the lineage check can object.
        from repro.index.artifact import _entry_digest

        entry.pop("sha256")
        entry["sha256"] = _entry_digest(entry)
        lines[0] = json.dumps(entry, sort_keys=True)
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="belongs to artifact"):
            load_index(path)
        _assert_repaired(path, mapping, small_chemical_queries)


class TestPayloadFaults:
    def test_flipped_payload_byte(self, mutated, small_chemical_queries):
        path, mapping = mutated
        payload = payload_path(path)
        data = bytearray(payload.read_bytes())
        data[len(data) // 2] ^= 0x40
        payload.write_bytes(bytes(data))
        with pytest.raises(ChecksumError):
            load_index(path)
        # Same-size corruption is invisible to the O(1) append-path
        # stat (by design — hashing the whole base per delta would make
        # incremental saves O(base)); every load still fails loudly,
        # and an explicit full save repairs it.
        save_index(mapping, path, compact=True)
        assert not journal_path(path).exists()
        reloaded = load_index(path)
        a = mapping.query_engine().batch_query(small_chemical_queries, 5)
        b = reloaded.query_engine().batch_query(small_chemical_queries, 5)
        for x, y in zip(a, b):
            assert x.ranking == y.ranking and x.scores == y.scores

    def test_truncated_payload(self, mutated, small_chemical_queries):
        path, mapping = mutated
        payload = payload_path(path)
        payload.write_bytes(payload.read_bytes()[:-20])
        with pytest.raises(ChecksumError):
            load_index(path)
        _assert_repaired(path, mapping, small_chemical_queries)

    def test_deleted_payload_sidecar(self, mutated, small_chemical_queries):
        path, mapping = mutated
        payload_path(path).unlink()
        with pytest.raises(PayloadMissingError):
            load_index(path)
        # The delta fast-path must notice the missing sidecar and write
        # a full base even though manifest and journal still agree.
        _assert_repaired(path, mapping, small_chemical_queries)


class TestManifestFaults:
    def test_deleted_manifest(self, mutated, small_chemical_queries):
        path, mapping = mutated
        path.unlink()
        with pytest.raises(ManifestMissingError):
            load_index(path)
        with pytest.raises(ManifestMissingError):
            IndexArtifact.load(path)
        with pytest.raises(ManifestMissingError):
            compact_index(path)
        _assert_repaired(path, mapping, small_chemical_queries)

    def test_manifest_missing_is_a_valueerror_too(self, tmp_path):
        # Pre-existing callers catch ValueError around load_index.
        with pytest.raises(ValueError):
            load_index(tmp_path / "never-saved.json")


class TestAutoCompaction:
    def test_small_ratio_triggers_compaction(
        self, mutated, small_chemical_queries
    ):
        path, mapping = mutated
        payload_before = payload_path(path).read_bytes()
        mapping.add_graphs(small_chemical_queries[2:3])
        save_index(mapping, path, auto_compact_ratio=1e-9)
        assert not journal_path(path).exists(), (
            "an oversized journal must fold into a fresh base"
        )
        assert payload_path(path).read_bytes() != payload_before
        assert mapping.journal_seq == 0
        reloaded = load_index(path)
        a = mapping.query_engine().batch_query(small_chemical_queries, 5)
        b = reloaded.query_engine().batch_query(small_chemical_queries, 5)
        for x, y in zip(a, b):
            assert x.ranking == y.ranking and x.scores == y.scores

    def test_large_ratio_keeps_appending(
        self, mutated, small_chemical_queries
    ):
        path, mapping = mutated
        payload_before = payload_path(path).read_bytes()
        mapping.add_graphs(small_chemical_queries[2:3])
        save_index(mapping, path, auto_compact_ratio=1e9)
        assert len(journal_path(path).read_text().splitlines()) == 3
        assert payload_path(path).read_bytes() == payload_before

    def test_default_ratio_is_sane_and_configurable(self):
        assert 0 < DEFAULT_AUTO_COMPACT_RATIO <= 1

    def test_pre_bytes_manifest_upgraded_on_first_append(
        self, mutated, small_chemical_queries
    ):
        """A v3 manifest from before the payload 'bytes' field forces
        one full-hash intact check; the first delta save must record
        the size so subsequent appends are O(1) stats again."""
        path, mapping = mutated
        manifest = json.loads(path.read_text())
        del manifest["payload"]["bytes"]
        path.write_text(json.dumps(manifest))
        mapping.add_graphs(small_chemical_queries[2:3])
        save_index(mapping, path)  # delta append, not a full write
        assert len(journal_path(path).read_text().splitlines()) == 3
        upgraded = json.loads(path.read_text())
        assert upgraded["payload"]["bytes"] == (
            payload_path(path).stat().st_size
        )

    def test_junk_bytes_field_triggers_repair_not_crash(
        self, mutated, small_chemical_queries
    ):
        path, mapping = mutated
        manifest = json.loads(path.read_text())
        manifest["payload"]["bytes"] = "not-a-number"
        path.write_text(json.dumps(manifest))
        mapping.add_graphs(small_chemical_queries[2:3])
        save_index(mapping, path)  # must repair with a full base
        assert not journal_path(path).exists()
        assert load_index(path).space.n == mapping.space.n

    def test_non_positive_ratio_rejected(self, mutated):
        path, mapping = mutated
        with pytest.raises(ValueError, match="auto_compact_ratio"):
            save_index(mapping, path, auto_compact_ratio=0.0)

    def test_compaction_threshold_is_journal_vs_payload(
        self, mutated, small_chemical_queries
    ):
        """The trigger compares journal bytes to base payload bytes: a
        ratio just above the current journal/payload quotient must not
        fire, one just below must."""
        path, mapping = mutated
        journal_bytes = journal_path(path).stat().st_size
        payload_bytes = payload_path(path).stat().st_size
        quotient = journal_bytes / payload_bytes
        mapping.add_graphs(small_chemical_queries[2:3])
        save_index(mapping, path, auto_compact_ratio=quotient * 10)
        assert journal_path(path).exists()
        mapping.add_graphs(small_chemical_queries[3:4])
        save_index(mapping, path, auto_compact_ratio=quotient / 10)
        assert not journal_path(path).exists()
