"""Every bench's ``--json`` payload carries the shared provenance fields.

Regression for an inconsistency where only some benchmark outputs could
be traced back to the code that produced them: all runners now stamp
``git_describe`` and ``index_format_version`` through one helper, so CI
artifacts from different benches and commits are directly comparable.
"""

import pytest

from repro.core.persistence import FORMAT_VERSION
from repro.utils.benchmeta import attach_bench_metadata, bench_metadata

META_KEYS = ("git_describe", "index_format_version")


def _assert_stamped(result):
    for key in META_KEYS:
        assert key in result, f"bench payload missing {key!r}"
    assert isinstance(result["git_describe"], str)
    assert result["git_describe"]  # never empty: "unknown" is the floor
    assert result["index_format_version"] == FORMAT_VERSION


def test_bench_metadata_shape():
    meta = bench_metadata()
    assert set(meta) == set(META_KEYS)
    _assert_stamped(meta)


def test_attach_is_in_place_and_returns():
    result = {"speedup": 2.0}
    assert attach_bench_metadata(result) is result
    _assert_stamped(result)
    assert result["speedup"] == 2.0


@pytest.mark.parametrize(
    "runner",
    ["queries", "serving", "incremental", "pruning", "frontend"],
)
def test_every_bench_runner_is_stamped(runner):
    """Smoke-size invocations of all five runners; metadata must ride."""
    if runner == "queries":
        from repro.query.bench import run_query_engine_bench

        result = run_query_engine_bench(
            db_size=20, query_count=6, num_features=10, k=3, seed=0,
            batch_sizes=(1, 4),
        )
    elif runner == "serving":
        from repro.serving.bench import run_serving_bench

        result = run_serving_bench(
            db_size=24, pool_size=6, stream_length=12, num_features=12,
            k=3, seed=0, batch_size=4, n_shards=2, n_workers=0,
        )
    elif runner == "incremental":
        from repro.index.bench import run_incremental_bench

        result = run_incremental_bench(
            db_size=20, add_count=2, remove_count=2, num_features=10,
            query_count=4, k=3, seed=0,
        )
    elif runner == "pruning":
        from repro.serving.pruning_bench import run_pruning_bench

        result = run_pruning_bench(
            n_clusters=3, per_cluster=20, dims_per_cluster=6,
            query_count=9, batch_size=3, k=3, seed=0, rounds=1,
        )
    else:
        from repro.serving.frontend_bench import run_frontend_bench

        result = run_frontend_bench(
            db_size=20, pool_size=4, per_client=3, clients=2,
            num_features=10, k=3, seed=0, flood_requests=8,
            calm_requests=3, rounds=1,
        )
    _assert_stamped(result)
    assert "report" in result
