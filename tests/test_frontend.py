"""Behaviour tests for the asyncio serving front-end.

The front-end's contract: admission decisions are structured and
immediate, everything admitted is answered bit-identically to the
engine, and coalescing/quotas/drain change *when* work happens, never
*what* is answered.
"""

import asyncio
import json
import os

import numpy as np
import pytest

from repro.core.mapping import mapping_from_selection
from repro.core.reselect import Reselector
from repro.datasets import synthetic_database, synthetic_query_set
from repro.features.binary_matrix import FeatureSpace
from repro.graph.labeled_graph import LabeledGraph
from repro.index import save_index
from repro.mining import mine_frequent_subgraphs
from repro.mining.gspan import FrequentSubgraph
from repro.query.bench import variance_selection
from repro.serving import protocol
from repro.serving.frontend import (
    AsyncFrontend,
    FrontendConfig,
    TenantQuotas,
    TokenBucket,
)
from repro.serving.service import QueryService
from repro.utils.errors import AdmissionError, ProtocolError


@pytest.fixture(scope="module")
def materials():
    db = synthetic_database(30, avg_edges=16, density=0.3, num_labels=5, seed=3)
    queries = synthetic_query_set(
        10, avg_edges=16, density=0.3, num_labels=5, seed=99
    )
    features = mine_frequent_subgraphs(db, min_support=0.2, max_edges=5)
    space = FeatureSpace(features, len(db))
    mapping = mapping_from_selection(space, variance_selection(space, 15))
    return db, queries, mapping


@pytest.fixture(scope="module")
def engine(materials):
    _db, _queries, mapping = materials
    return mapping.query_engine()


def _frontend(engine, **config_kwargs):
    service = QueryService(engine, n_shards=2, n_workers=0)
    return AsyncFrontend(
        service, FrontendConfig(**config_kwargs), own_service=True
    )


def _wire_query(q, k, request_id=0, tenant=None):
    request = {
        "op": "query", "id": request_id, "k": k,
        "graph": protocol.graph_to_wire(q),
    }
    if tenant is not None:
        request["tenant"] = tenant
    return request


class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: clock[0])
        assert all(bucket.try_acquire()[0] for _ in range(3))
        ok, wait = bucket.try_acquire()
        assert not ok
        assert wait == pytest.approx(0.5)  # 1 token at 2/sec

    def test_refill_is_rate_times_elapsed(self):
        clock = [0.0]
        bucket = TokenBucket(rate=4.0, burst=8.0, clock=lambda: clock[0])
        assert bucket.try_acquire(8.0)[0]
        clock[0] = 1.0  # +4 tokens
        assert bucket.try_acquire(4.0)[0]
        ok, wait = bucket.try_acquire(2.0)
        assert not ok and wait == pytest.approx(0.5)

    def test_refill_caps_at_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: clock[0])
        clock[0] = 100.0
        assert bucket.try_acquire(2.0)[0]
        assert not bucket.try_acquire(0.5)[0]

    def test_cost_beyond_burst_can_never_succeed(self):
        bucket = TokenBucket(rate=1.0, burst=4.0)
        ok, wait = bucket.try_acquire(5.0)
        assert not ok and wait == float("inf")


class TestProtocol:
    def test_wire_graph_round_trip_structure(self, materials):
        _db, queries, _mapping = materials
        q = queries[0]
        back = protocol.graph_from_wire(protocol.graph_to_wire(q))
        assert back.num_vertices == q.num_vertices
        assert back.num_edges == q.num_edges
        # JSON stringifies labels; the frontend's codec restores types.
        assert [back.vertex_label(v) for v in range(back.num_vertices)] == [
            str(q.vertex_label(v)) for v in range(q.num_vertices)
        ]

    @pytest.mark.parametrize(
        "line, fragment",
        [
            ("not json", "not valid JSON"),
            ("[1, 2]", "must be a JSON object"),
            ('{"op": "frobnicate"}', "unknown op"),
            ('{"op": "query", "graph": {}}', "integer 'k'"),
            ('{"op": "query", "k": "five", "graph": {}}', "integer 'k'"),
            ('{"op": "query", "k": 5}', "requires a 'graph'"),
            ('{"op": "batch", "k": 5}', "'graphs' list"),
            ('{"op": "reload"}', "string 'path'"),
            ('{"op": "query", "k": 5, "graph": {}, "tenant": 7}', "'tenant'"),
        ],
    )
    def test_parse_request_rejections(self, line, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            protocol.parse_request(line)

    def test_bad_graph_payloads(self):
        with pytest.raises(ProtocolError):
            protocol.graph_from_wire({"vertices": "abc"})
        with pytest.raises(ProtocolError):
            protocol.graph_from_wire(
                {"vertices": ["a", "b"], "edges": [[0, 1]]}
            )
        with pytest.raises(ProtocolError):
            protocol.graph_from_wire(
                {"vertices": ["a", "b"], "edges": [[0, 9, "x"]]}
            )


class TestAdmission:
    @pytest.mark.asyncio
    async def test_queue_full_is_structured_overload(self, engine):
        frontend = _frontend(engine, max_queue=2)
        try:
            queries = synthetic_query_set(
                3, avg_edges=16, density=0.3, num_labels=5, seed=99
            )
            # Dispatcher not started: the first two submissions park in
            # the queue, the third must bounce immediately.
            waiting = [
                asyncio.ensure_future(frontend.submit([q], 3))
                for q in queries[:2]
            ]
            await asyncio.sleep(0)
            with pytest.raises(AdmissionError) as excinfo:
                await frontend.submit([queries[2]], 3)
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.retry_after > 0
            assert frontend.stats.rejected_overload == 1
            await frontend.start()
            for future in waiting:
                results, generation = await future
                assert generation == 0 and len(results) == 1
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_batch_request_counts_its_size(self, engine, materials):
        _db, queries, _mapping = materials
        frontend = _frontend(engine, max_queue=3)
        try:
            with pytest.raises(AdmissionError) as excinfo:
                await frontend.submit(queries[:4], 3)
            assert excinfo.value.code == "overloaded"
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_batch_larger_than_queue_can_never_retry(
        self, engine, materials
    ):
        """A batch that exceeds the whole queue bound gets no
        retry_after — retrying an un-fittable request is pointless."""
        _db, queries, _mapping = materials
        frontend = _frontend(engine, max_queue=2)
        try:
            await frontend.start()
            with pytest.raises(AdmissionError) as excinfo:
                await frontend.submit(queries[:4], 3)
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.retry_after is None
        finally:
            await frontend.aclose()

    def test_non_positive_quota_burst_rejected(self):
        with pytest.raises(ValueError, match="quota_burst"):
            FrontendConfig(quota_rate=5.0, quota_burst=0.0)

    @pytest.mark.asyncio
    async def test_tenant_stats_table_follows_max_tenants(
        self, engine, materials
    ):
        """The stats cap is driven by the same max_tenants knob as the
        bucket table — one bound, not two silently diverging ones."""
        _db, queries, _mapping = materials
        frontend = _frontend(engine, max_tenants=3)
        try:
            await frontend.start()
            for i in range(6):
                await frontend.submit([queries[0]], 3, tenant=f"t{i}")
            per_tenant = frontend.stats.per_tenant
            assert len(per_tenant) == 4  # 3 individual + "<other>"
            assert per_tenant["<other>"]["admitted"] == 3
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_tenant_bucket_table_is_bounded(self, engine, materials):
        """Wire-supplied tenant names must not grow server state without
        bound: past max_tenants the least-recently-seen bucket evicts."""
        _db, queries, _mapping = materials
        frontend = _frontend(
            engine, quota_rate=100.0, quota_burst=100.0, max_tenants=3
        )
        try:
            await frontend.start()
            for i in range(8):
                await frontend.submit([queries[0]], 3, tenant=f"t{i}")
            assert len(frontend._buckets) == 3
            assert "t7" in frontend._buckets  # most recent survive
            assert "t0" not in frontend._buckets
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_per_tenant_quota_isolation(self, engine, materials):
        _db, queries, _mapping = materials
        frontend = _frontend(engine, quota_rate=1.0, quota_burst=2.0)
        try:
            await frontend.start()
            for q in queries[:2]:
                await frontend.submit([q], 3, tenant="greedy")
            with pytest.raises(AdmissionError) as excinfo:
                await frontend.submit([queries[2]], 3, tenant="greedy")
            assert excinfo.value.code == "quota_exceeded"
            assert 0 < excinfo.value.retry_after <= 1.0
            # A different tenant has its own bucket.
            results, _gen = await frontend.submit(
                [queries[2]], 3, tenant="polite"
            )
            assert len(results) == 1
            assert frontend.stats.per_tenant["greedy"]["rejected_quota"] == 1
            assert frontend.stats.per_tenant["polite"]["rejected_quota"] == 0
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_overload_rejection_does_not_burn_quota(
        self, engine, materials
    ):
        """A compliant tenant bounced by a full queue must keep its
        tokens — otherwise retrying through a load spike would be
        double-penalised into quota_exceeded."""
        _db, queries, _mapping = materials
        frontend = _frontend(
            engine, max_queue=1, quota_rate=1.0, quota_burst=2.0
        )
        try:
            # Dispatcher not started: one query fills the queue.
            parked = asyncio.ensure_future(frontend.submit([queries[0]], 3))
            await asyncio.sleep(0)
            for _ in range(3):  # would exhaust burst=2 if tokens burned
                with pytest.raises(AdmissionError) as excinfo:
                    await frontend.submit([queries[1]], 3, tenant="t")
                assert excinfo.value.code == "overloaded"
            await frontend.start()
            await parked
            # Tokens intact: the tenant still has its full burst.
            for q in queries[1:3]:
                await frontend.submit([q], 3, tenant="t")
            assert frontend.stats.per_tenant["t"]["rejected_quota"] == 0
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_draining_rejects_new_work(self, engine, materials):
        _db, queries, _mapping = materials
        frontend = _frontend(engine)
        try:
            await frontend.start()
            frontend.begin_drain()
            with pytest.raises(AdmissionError) as excinfo:
                await frontend.submit([queries[0]], 3)
            assert excinfo.value.code == "shutting_down"
            assert excinfo.value.retry_after is None
        finally:
            await frontend.aclose()


class TestTenantQuotaFolding:
    """Regressions for the name-cycling quota bypass: evicting a bucket
    must fold its balance into ``"<other>"``, and a newcomer past the
    cap must be seeded from that shared balance, never a fresh burst."""

    def test_name_cycling_cannot_exceed_one_extra_budget(self):
        clock = [0.0]
        rate, burst, max_tenants, seconds = 2.0, 4.0, 3, 10.0
        quotas = TenantQuotas(rate, burst, max_tenants, lambda: clock[0])
        admitted = 0
        attempts = 0
        while clock[0] < seconds:
            for i in range(max_tenants + 1):  # one more name than slots
                attempts += 1
                if quotas.try_acquire(f"cycler-{i}", 1.0)[0]:
                    admitted += 1
            clock[0] += 0.05
        # Before the fix each churned name arrived with a fresh burst:
        # admitted would track attempts (~800 here).  Folded, the whole
        # churning population shares one budget: the max_tenants table
        # fills (one burst spent per slot before the cap binds), then
        # everyone funnels through <other> = burst + rate * seconds.
        budget = max_tenants + burst + rate * seconds
        assert attempts > 4 * budget  # the attack genuinely pressed
        assert admitted <= budget + 1
        assert quotas.evictions > 0

    def test_returning_evicted_tenant_gets_no_fresh_burst(self):
        clock = [0.0]
        quotas = TenantQuotas(
            rate=1.0, burst=2.0, max_tenants=2, clock=lambda: clock[0]
        )
        assert all(quotas.try_acquire("a", 1.0)[0] for _ in range(2))
        quotas.try_acquire("b", 0.0)
        quotas.try_acquire("c", 0.0)  # evicts "a" (tokens: 0)
        assert quotas.evictions == 1
        # "a" returns: its drained balance was folded into <other>, so
        # it must resume from min(other, evicted) = 0, not burst=2.
        ok, wait = quotas.try_acquire("a", 1.0)
        assert not ok
        assert wait == pytest.approx(1.0)  # 1 token at 1/sec

    def test_fold_takes_min_never_sums_balances(self):
        clock = [0.0]
        quotas = TenantQuotas(
            rate=1.0, burst=4.0, max_tenants=1, clock=lambda: clock[0]
        )
        quotas.try_acquire("a", 3.0)  # "a" left with 1 token
        # "b" displaces "a": <other> starts at burst=4, folds to
        # min(4, 1) = 1 — merging must never create spendable tokens.
        assert quotas.try_acquire("b", 1.0)[0]
        assert not quotas.try_acquire("c", 1.0)[0]

    def test_resident_tenant_keeps_its_own_refill_stream(self):
        """A tenant that *stays* resident is untouched by churn around
        it: its named bucket still refills at the configured rate."""
        clock = [0.0]
        quotas = TenantQuotas(
            rate=2.0, burst=2.0, max_tenants=2, clock=lambda: clock[0]
        )
        assert all(quotas.try_acquire("resident", 1.0)[0] for _ in range(2))
        for i in range(10):  # churn the other slot
            quotas.try_acquire(f"churn-{i}", 1.0)
        clock[0] = 1.0  # +2 tokens for the resident
        assert quotas.try_acquire("resident", 2.0)[0]

    @pytest.mark.asyncio
    async def test_frontend_counts_bucket_evictions(self, engine, materials):
        _db, queries, _mapping = materials
        frontend = _frontend(
            engine, quota_rate=100.0, quota_burst=100.0, max_tenants=2
        )
        try:
            await frontend.start()
            for i in range(5):
                await frontend.submit([queries[0]], 3, tenant=f"t{i}")
            payload = frontend.stats_payload()
            assert payload["frontend"]["bucket_evictions"] == 3
        finally:
            await frontend.aclose()


class TestInjectedClock:
    """FrontendConfig.clock threads a virtual clock into admission, so
    quota behaviour is testable with zero sleeps."""

    @pytest.mark.asyncio
    async def test_quota_refill_on_virtual_time_no_sleeps(
        self, engine, materials
    ):
        _db, queries, _mapping = materials
        clock = [0.0]
        frontend = _frontend(
            engine,
            quota_rate=1.0,
            quota_burst=2.0,
            clock=lambda: clock[0],
        )
        try:
            await frontend.start()
            for q in queries[:2]:
                await frontend.submit([q], 3, tenant="t")
            with pytest.raises(AdmissionError) as excinfo:
                await frontend.submit([queries[2]], 3, tenant="t")
            assert excinfo.value.code == "quota_exceeded"
            assert excinfo.value.retry_after == pytest.approx(1.0)
            clock[0] = 1.0  # the quoted wait, in virtual time
            results, _gen = await frontend.submit(
                [queries[2]], 3, tenant="t"
            )
            assert len(results) == 1
        finally:
            await frontend.aclose()


class TestRetryAfterEstimate:
    """Regressions for the overload retry_after: it must cover the
    retrier's own cost and be seeded from measured batch time, not the
    old hard-coded 0.05 blended at 20%."""

    @pytest.mark.asyncio
    async def test_retry_after_includes_request_cost(self, engine, materials):
        _db, queries, _mapping = materials
        frontend = _frontend(engine, max_queue=4, batch_size=1)
        try:
            # Dispatcher not started: park 3 queries, 2 slots remain.
            parked = [
                asyncio.ensure_future(frontend.submit([q], 3))
                for q in queries[:3]
            ]
            await asyncio.sleep(0)
            with pytest.raises(AdmissionError) as two:
                await frontend.submit(queries[3:5], 3)
            with pytest.raises(AdmissionError) as four:
                await frontend.submit(queries[3:7], 3)
            # Same backlog, bigger request: the quote must grow — the
            # retrying client drains its own cost through the queue too.
            assert four.value.retry_after > two.value.retry_after
            await frontend.start()
            await asyncio.gather(*parked)
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_cold_overload_quotes_at_least_inflight_elapsed(
        self, engine, materials
    ):
        """Before any batch completes, a batch already in flight for T
        seconds bounds the estimate below by T — the old code quoted
        0.01 * backlog while each batch actually took ~0.2s."""
        _db, queries, _mapping = materials
        frontend = _frontend(engine, max_queue=2, batch_size=1)
        try:
            parked = [
                asyncio.ensure_future(frontend.submit([q], 3))
                for q in queries[:2]
            ]
            await asyncio.sleep(0)
            assert frontend._batch_seconds is None  # genuinely cold
            inflight_for = 0.25
            frontend._batch_started = (
                asyncio.get_running_loop().time() - inflight_for
            )
            with pytest.raises(AdmissionError) as excinfo:
                await frontend.submit([queries[2]], 3)
            backlog_batches = 3  # (2 queued + 1 cost) / batch_size 1
            assert (
                excinfo.value.retry_after
                >= backlog_batches * inflight_for
            )
            frontend._batch_started = None
            await frontend.start()
            await asyncio.gather(*parked)
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_first_measurement_seeds_ewma_directly(
        self, engine, materials
    ):
        """The first measured batch time becomes the estimate outright;
        blending it 20/80 against a made-up 0.05 constant would poison
        retry_after for the next ~10 batches."""
        _db, queries, _mapping = materials
        frontend = _frontend(engine)
        try:
            await frontend.start()
            assert frontend._batch_seconds is None
            await frontend.submit([queries[0]], 3)
            first = frontend._batch_seconds
            assert first is not None and first > 0
            # Fast real batches (well under 50ms here) prove no 0.05
            # constant was blended in: 0.8*0.05 would dominate.
            assert first < 0.04
        finally:
            await frontend.aclose()


class TestPing:
    @pytest.mark.asyncio
    async def test_ping_reports_liveness_inline(self, engine):
        frontend = _frontend(engine)
        try:
            await frontend.start()
            response = await frontend.handle_request({"op": "ping", "id": 4})
            assert response["ok"] and response["id"] == 4
            assert response["generation"] == 0
            assert response["queue_depth"] == 0
            assert response["draining"] is False
            assert frontend.stats.admitted == 0  # no admission charged
        finally:
            await frontend.aclose()


class TestCoalescing:
    @pytest.mark.asyncio
    async def test_concurrent_queries_share_one_batch(
        self, engine, materials
    ):
        _db, queries, _mapping = materials
        frontend = _frontend(engine, batch_size=4, batch_window=0.05)
        try:
            await frontend.start()
            answers = await asyncio.gather(
                *(frontend.submit([q], 5) for q in queries[:4])
            )
            assert frontend.stats.batches_dispatched == 1
            reference = engine.batch_query(queries[:4], 5)
            for (results, generation), truth in zip(answers, reference):
                assert generation == 0
                assert results[0].ranking == truth.ranking
                assert results[0].scores == truth.scores
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_mixed_k_requests_split_by_k(self, engine, materials):
        _db, queries, _mapping = materials
        frontend = _frontend(engine, batch_size=4, batch_window=0.05)
        try:
            await frontend.start()
            (r3, _), (r5, _) = await asyncio.gather(
                frontend.submit([queries[0]], 3),
                frontend.submit([queries[1]], 5),
            )
            assert frontend.stats.batches_dispatched == 2
            assert len(r3[0].ranking) == 3
            assert len(r5[0].ranking) == 5
            assert r3[0].ranking == engine.query(queries[0], 3).ranking
            assert r5[0].ranking == engine.query(queries[1], 5).ranking
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_linger_window_flushes_partial_batches(
        self, engine, materials
    ):
        _db, queries, _mapping = materials
        frontend = _frontend(engine, batch_size=64, batch_window=0.01)
        try:
            await frontend.start()
            results, _gen = await asyncio.wait_for(
                frontend.submit([queries[0]], 3), timeout=5
            )
            assert len(results) == 1  # did not wait for 63 more queries
        finally:
            await frontend.aclose()


class TestRequestDispatch:
    @pytest.mark.asyncio
    async def test_query_and_batch_round_trip(self, engine, materials):
        _db, queries, _mapping = materials
        frontend = _frontend(engine)
        try:
            await frontend.start()
            reference = engine.batch_query(queries[:3], 5)
            single = await frontend.handle_line(
                json.dumps(_wire_query(queries[0], 5, request_id=11))
            )
            assert single["ok"] and single["id"] == 11
            assert single["ranking"] == reference[0].ranking
            assert single["scores"] == reference[0].scores
            batch = await frontend.handle_request(
                {
                    "op": "batch", "id": 12, "k": 5,
                    "graphs": [
                        protocol.graph_to_wire(q) for q in queries[:3]
                    ],
                }
            )
            assert batch["ok"] and len(batch["results"]) == 3
            for got, truth in zip(batch["results"], reference):
                assert got["ranking"] == truth.ranking
                assert got["scores"] == truth.scores
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_malformed_lines_get_bad_request(self, engine):
        frontend = _frontend(engine)
        try:
            await frontend.start()
            response = await frontend.handle_line("{ not json")
            assert not response["ok"] and response["error"] == "bad_request"
            response = await frontend.handle_line(
                '{"op": "query", "k": 5, "graph": {"vertices": 3}}'
            )
            assert not response["ok"] and response["error"] == "bad_request"
            assert frontend.stats.bad_requests == 2
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_bad_k_is_bad_request_not_internal(
        self, engine, materials
    ):
        _db, queries, _mapping = materials
        frontend = _frontend(engine)
        try:
            await frontend.start()
            response = await frontend.handle_request(
                _wire_query(queries[0], 0)
            )
            assert not response["ok"]
            assert response["error"] == "bad_request"
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_stats_op_reports_both_layers(self, engine, materials):
        _db, queries, _mapping = materials
        frontend = _frontend(engine)
        try:
            await frontend.start()
            await frontend.submit([queries[0]], 3, tenant="t1")
            response = await frontend.handle_request({"op": "stats", "id": 9})
            assert response["ok"]
            assert response["generation"] == 0
            assert response["frontend"]["completed"] == 1
            assert response["frontend"]["per_tenant"]["t1"]["admitted"] == 1
            assert response["service"]["queries"] == 1
            assert response["service"]["n_shards"] == 2
        finally:
            await frontend.aclose()


class TestLiveUpdateAndReload:
    @pytest.mark.asyncio
    async def test_update_op_bumps_generation_and_answers(self, materials):
        db, queries, _mapping = materials
        # A private mapping: updates mutate it in place.
        features = mine_frequent_subgraphs(db, min_support=0.2, max_edges=5)
        space = FeatureSpace(features, len(db))
        mapping = mapping_from_selection(space, variance_selection(space, 15))
        frontend = _frontend(mapping.query_engine())
        try:
            await frontend.start()
            before = await frontend.handle_request(_wire_query(queries[0], 5))
            assert before["ok"] and before["generation"] == 0
            response = await frontend.handle_request(
                {
                    "op": "update", "id": 1,
                    "add": [protocol.graph_to_wire(queries[1])],
                    "remove": [0, 2],
                }
            )
            assert response["ok"]
            assert response["generation"] == 1
            assert response["added"] == 1 and response["removed"] == 2
            after = await frontend.handle_request(_wire_query(queries[0], 5))
            assert after["ok"] and after["generation"] == 1
            # The answer matches a fresh service over the mutated index.
            with QueryService(
                mapping.query_engine(), n_shards=2, n_workers=0
            ) as scratch:
                truth = scratch.batch_query([queries[0]], 5)[0]
            assert after["ranking"] == truth.ranking
            assert after["scores"] == truth.scores
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_update_refreshes_the_wire_codec(self, materials):
        """A staleness-hook re-selection changes the feature set the
        codec decodes against; apply_update must rebuild it."""
        db, queries, _mapping = materials
        features = mine_frequent_subgraphs(db, min_support=0.2, max_edges=5)
        space = FeatureSpace(features, len(db))
        mapping = mapping_from_selection(space, variance_selection(space, 15))
        frontend = _frontend(mapping.query_engine())
        try:
            await frontend.start()
            before = frontend._codec
            await frontend.apply_update(added=[queries[0]])
            assert frontend._codec is not before  # rebuilt, never stale
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_update_remove_validates_indices(self, engine, materials):
        _db, queries, _mapping = materials
        frontend = _frontend(engine)
        try:
            await frontend.start()
            response = await frontend.handle_request(
                {"op": "update", "id": 1, "remove": ["zero"]}
            )
            assert not response["ok"]
            assert response["error"] == "bad_request"
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_reload_swaps_the_served_index(self, materials, tmp_path):
        db, queries, mapping = materials
        path = tmp_path / "index.json"
        save_index(mapping, path)
        # Serve a *different* (smaller) index first.
        small_features = mine_frequent_subgraphs(
            db[:20], min_support=0.2, max_edges=4
        )
        small_space = FeatureSpace(small_features, 20)
        small = mapping_from_selection(
            small_space, variance_selection(small_space, 8)
        )
        frontend = _frontend(small.query_engine())
        try:
            await frontend.start()
            response = await frontend.handle_request(
                {"op": "reload", "id": 1, "path": str(path)}
            )
            assert response["ok"]
            assert response["database_size"] == mapping.space.n
            assert response["dimensionality"] == mapping.dimensionality
            # A reload is one more generation: the stamp stays
            # monotonic, so generation 0 can never name two databases.
            assert response["generation"] == 1
            after = await frontend.handle_request(_wire_query(queries[0], 5))
            truth = mapping.query_engine().query(queries[0], 5)
            assert after["generation"] == 1
            assert after["ranking"] == truth.ranking
            assert after["scores"] == truth.scores
            assert frontend.stats.reloads == 1
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_reload_never_closes_a_caller_owned_service(
        self, engine, materials, tmp_path
    ):
        """With own_service=False the old service belongs to the
        caller: reload must leave it fully usable — and must take
        ownership of the replacement it built itself."""
        _db, queries, mapping = materials
        path = tmp_path / "index.json"
        save_index(mapping, path)
        caller_service = QueryService(engine, n_shards=2, n_workers=0)
        frontend = AsyncFrontend(caller_service)  # own_service=False
        try:
            await frontend.start()
            response = await frontend.handle_request(
                {"op": "reload", "id": 1, "path": str(path)}
            )
            assert response["ok"]
            assert frontend.service is not caller_service
            assert frontend._own_service  # replacement is frontend-owned
        finally:
            await frontend.aclose()
        # The caller's service survived both the reload and the aclose.
        result = caller_service.batch_query([queries[0]], 3)
        assert result[0].ranking == engine.query(queries[0], 3).ranking
        caller_service.close()

    @pytest.mark.asyncio
    async def test_failed_reload_leaves_service_untouched(
        self, engine, materials, tmp_path
    ):
        _db, queries, _mapping = materials
        frontend = _frontend(engine)
        try:
            await frontend.start()
            old_service = frontend.service
            response = await frontend.handle_request(
                {"op": "reload", "id": 1, "path": str(tmp_path / "no.json")}
            )
            assert not response["ok"]
            assert response["error"] == "internal"
            assert "does not exist" in response["message"]
            assert frontend.service is old_service
            ok = await frontend.handle_request(_wire_query(queries[0], 3))
            assert ok["ok"]
        finally:
            await frontend.aclose()


def _drifting_materials(seed=0, dims=4, clusters=3, per_cluster=8):
    """An under-selected vector index plus the churn that heals it.

    The stale selection spends ``dims`` slots on dead pad columns; the
    churn rows light up an emerging block and overlap cluster 0, so the
    staleness policy trips and a re-selection has capacity to reclaim.
    """
    rng = np.random.default_rng(seed)
    active = clusters * dims
    emerging = active + dims
    m = emerging + dims
    initial = np.zeros((clusters * per_cluster, m), dtype=np.int8)
    for c in range(clusters):
        rows = slice(c * per_cluster, (c + 1) * per_cluster)
        initial[rows, c * dims:(c + 1) * dims] = (
            rng.random((per_cluster, dims)) < 0.9
        )
    initial[initial.sum(axis=1) == 0, 0] = 1
    churn = np.zeros((per_cluster, m), dtype=np.int8)
    churn[:, active:emerging] = rng.random((per_cluster, dims)) < 0.9
    churn[:, 0:dims] |= (rng.random((per_cluster, dims)) < 0.5).astype(np.int8)
    churn[churn.sum(axis=1) == 0, active] = 1

    def graph_for(vector, graph_id):
        labels = [f"dim{j}" for j in np.flatnonzero(vector)]
        return LabeledGraph(labels, graph_id=graph_id)

    features = [
        FrequentSubgraph(
            LabeledGraph([f"dim{j}"], graph_id=f"dim{j}"),
            {int(i) for i in np.flatnonzero(initial[:, j])},
        )
        for j in range(m)
    ]
    space = FeatureSpace(features, initial.shape[0])
    selection = list(range(active)) + list(range(emerging, m))
    mapping = mapping_from_selection(space, selection)
    graphs = [graph_for(v, f"db{i}") for i, v in enumerate(initial)]
    churn_graphs = [graph_for(v, f"new{i}") for i, v in enumerate(churn)]
    reselector = Reselector(graphs=graphs).attach(mapping, max_drift=0.1)
    return mapping, reselector, graphs, churn_graphs


class TestMaintenanceOp:
    @pytest.mark.asyncio
    async def test_maintain_heals_a_drifted_index(self, tmp_path):
        mapping, reselector, _graphs, churn = _drifting_materials()
        service = QueryService(mapping, n_shards=2, n_workers=0)
        frontend = AsyncFrontend(
            service,
            FrontendConfig(
                reselector=reselector,
                index_path=tmp_path / "index.json",
            ),
            own_service=True,
        )
        try:
            await frontend.start()
            update = await frontend.handle_request({
                "op": "update", "id": 1,
                "add": [protocol.graph_to_wire(g) for g in churn],
            })
            assert update["ok"] and update["generation"] == 1
            assert mapping.stale  # drift crossed the policy threshold

            response = await frontend.handle_request(
                {"op": "maintain", "id": 2}
            )
            assert response["ok"]
            assert response["stale"] is True  # what the pass walked into
            assert response["reselected"] is True
            assert response["persisted"] is True
            assert response["generation"] == 2  # update, then reselection
            assert isinstance(response["journal_entries"], int)
            assert not mapping.stale
            assert reselector.selections_changed == 1

            # The healed index keeps answering over the wire.
            probe = await frontend.handle_request({
                "op": "query", "id": 3, "k": 5,
                "graph": protocol.graph_to_wire(churn[0]),
            })
            assert probe["ok"]
            assert len(probe["ranking"]) == 5
            assert probe["generation"] == 2

            stats = await frontend.handle_request({"op": "stats", "id": 4})
            assert stats["frontend"]["maintenance_runs"] == 1
            assert stats["service"]["reselections"] == 1
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_maintain_is_idempotent_when_healthy(self):
        mapping, reselector, _graphs, _churn = _drifting_materials()
        service = QueryService(mapping, n_shards=2, n_workers=0)
        frontend = AsyncFrontend(
            service, FrontendConfig(reselector=reselector), own_service=True
        )
        try:
            await frontend.start()
            response = await frontend.handle_request(
                {"op": "maintain", "id": 1}
            )
            assert response["ok"]
            assert response["stale"] is False
            assert response["reselected"] is False
            assert response["persisted"] is False  # no index_path configured
            assert response["generation"] == 0  # nothing swapped
            assert frontend.stats.maintenance_runs == 1
        finally:
            await frontend.aclose()


class TestDrain:
    @pytest.mark.asyncio
    async def test_drain_answers_everything_admitted(self, engine, materials):
        _db, queries, _mapping = materials
        frontend = _frontend(engine, batch_size=4, batch_window=0.05)
        try:
            futures = [
                asyncio.ensure_future(frontend.submit([q], 3))
                for q in queries[:6]
            ]
            await asyncio.sleep(0)  # let submissions enqueue
            await frontend.start()
            await frontend.drain()
            for future in futures:
                results, _gen = await future  # resolved, not dropped
                assert len(results) == 1
            assert frontend.stats.admitted == frontend.stats.completed == 6
            assert frontend.stats.failed == 0
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_shutdown_op_starts_drain(self, engine):
        frontend = _frontend(engine)
        try:
            await frontend.start()
            response = await frontend.handle_request({"op": "shutdown"})
            assert response["ok"] and response["draining"]
            assert frontend.draining
            await asyncio.wait_for(frontend.wait_shutdown(), timeout=1)
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    async def test_aclose_is_idempotent(self, engine):
        frontend = _frontend(engine)
        await frontend.start()
        await frontend.aclose()
        await frontend.aclose()


class TestStdioLoop:
    @pytest.mark.asyncio
    async def test_stdio_session(self, engine, materials):
        _db, queries, _mapping = materials
        frontend = _frontend(engine)
        await frontend.start()

        lines = [
            json.dumps(_wire_query(queries[0], 3, request_id=1)),
            json.dumps({"op": "stats", "id": 2}),
            json.dumps({"op": "shutdown", "id": 3}),
        ]
        read_fd, write_fd = os.pipe()
        with os.fdopen(write_fd, "wb") as w:
            w.write(("\n".join(lines) + "\n").encode())

        class _Out:
            def __init__(self):
                self.chunks = []

            def write(self, data):
                self.chunks.append(data)

            def flush(self):
                pass

        out = _Out()
        try:
            with os.fdopen(read_fd, "rb") as stdin:
                await asyncio.wait_for(
                    protocol.serve_stdio(frontend, stdin=stdin, stdout=out),
                    timeout=10,
                )
            responses = [
                json.loads(chunk) for chunk in b"".join(out.chunks).splitlines()
            ]
            assert [r["id"] for r in responses] == [1, 2, 3]
            assert responses[0]["ok"]
            assert responses[0]["ranking"] == (
                engine.query(queries[0], 3).ranking
            )
            assert responses[2]["draining"]
            assert frontend.draining  # shutdown op ended the loop
        finally:
            await frontend.aclose()

    @pytest.mark.asyncio
    @pytest.mark.timeout(15)
    async def test_stdio_loop_wakes_on_external_drain(self, engine):
        """A drain begun elsewhere (a TCP peer's shutdown op, a signal
        handler) must end the stdio loop even though stdin is silent."""
        frontend = _frontend(engine)
        await frontend.start()
        read_fd, write_fd = os.pipe()  # held open: stdin never EOFs
        try:
            with os.fdopen(read_fd, "rb") as stdin:
                loop_task = asyncio.ensure_future(
                    protocol.serve_stdio(
                        frontend, stdin=stdin, stdout=_NullOut()
                    )
                )
                await asyncio.sleep(0.05)
                assert not loop_task.done()
                frontend.begin_drain()
                await asyncio.wait_for(loop_task, timeout=5)
        finally:
            os.close(write_fd)
            await frontend.aclose()


class _NullOut:
    def write(self, data):
        pass

    def flush(self):
        pass


class TestTcpDrain:
    @pytest.mark.asyncio
    @pytest.mark.timeout(15)
    async def test_idle_tcp_client_does_not_block_drain(
        self, engine, materials
    ):
        """A connected-but-silent peer must see its connection closed
        when drain begins — on Python >= 3.12.1 Server.wait_closed()
        waits for every handler, so a handler parked in readline()
        would otherwise wedge shutdown forever."""
        _db, queries, _mapping = materials
        frontend = _frontend(engine)
        await frontend.start()
        server = await protocol.serve_tcp(frontend, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            # One real request proves the connection is live...
            writer.write(
                (json.dumps(_wire_query(queries[0], 3, request_id=1)) + "\n")
                .encode()
            )
            await writer.drain()
            first = json.loads(await reader.readline())
            assert first["ok"]
            # ...then the client goes idle and drain begins elsewhere.
            frontend.begin_drain()
            eof = await asyncio.wait_for(reader.readline(), timeout=5)
            assert eof == b""  # handler exited and closed the socket
            writer.close()
            server.close()
            await asyncio.wait_for(server.wait_closed(), timeout=5)
        finally:
            await frontend.aclose()
