"""Unit tests for the pluggable kernel registry and its building blocks.

The registry's contract is operational: selection is explicit > scoped
override > environment > numpy, and a missing/unknown backend *warns and
degrades* instead of raising — a stale ``REPRO_KERNEL=numba`` on a host
without numba must never take serving down.  The vectorised VF2
candidate filter is checked feature-by-feature against the scalar
``_label_counts_ok`` it replaces.
"""

import numpy as np
import pytest

from repro import kernels
from repro.core.lazy import LazyArray
from repro.datasets import synthetic_database
from repro.isomorphism.vf2 import (
    PatternProfile,
    TargetProfile,
    _label_counts_ok,
)
from repro.kernels import (
    DEFAULT_BACKEND,
    KERNEL_ENV_VAR,
    KernelConfig,
    PatternFilterStats,
    active_backend,
    available_backends,
    backend_name,
    register_backend,
    resolve_backend,
    use_backend,
)


class TestRegistry:
    def test_numpy_first_and_reference_present(self):
        names = available_backends()
        assert names[0] == DEFAULT_BACKEND
        assert "reference" in names

    def test_every_registered_backend_has_the_full_interface(self):
        for name in available_backends():
            backend = resolve_backend(name)
            for fn in (
                "distance_block",
                "bound_block",
                "bound_check",
                "vf2_candidate_filter",
            ):
                assert callable(getattr(backend, fn))

    def test_unknown_name_warns_and_falls_back_to_numpy(self):
        with pytest.warns(RuntimeWarning, match="unknown or unavailable"):
            backend = resolve_backend("no-such-backend")
        assert backend is resolve_backend(DEFAULT_BACKEND)

    def test_numba_degrades_gracefully_when_not_installed(self):
        # Satellite contract: requesting the optional JIT backend on a
        # host without numba is a warning + numpy, never an ImportError.
        if "numba" in available_backends():
            pytest.skip("numba installed — fallback path not reachable")
        from repro.kernels import numba_backend

        assert not numba_backend.AVAILABLE
        with pytest.warns(RuntimeWarning):
            backend = resolve_backend("numba")
        assert backend is resolve_backend(DEFAULT_BACKEND)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        assert active_backend() is resolve_backend("reference")
        monkeypatch.delenv(KERNEL_ENV_VAR)
        assert active_backend() is resolve_backend(DEFAULT_BACKEND)

    def test_use_backend_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, DEFAULT_BACKEND)
        with use_backend("reference") as backend:
            assert backend is resolve_backend("reference")
            assert active_backend() is backend
        assert active_backend() is resolve_backend(DEFAULT_BACKEND)

    def test_use_backend_nests_innermost_wins(self):
        with use_backend("reference"):
            with use_backend(DEFAULT_BACKEND):
                assert active_backend() is resolve_backend(DEFAULT_BACKEND)
            assert active_backend() is resolve_backend("reference")

    def test_kernel_config_resolution(self):
        assert KernelConfig("reference").resolve() is resolve_backend(
            "reference"
        )
        with use_backend("reference"):
            assert KernelConfig().resolve() is resolve_backend("reference")

    def test_backend_name_round_trip(self):
        for name in available_backends():
            assert backend_name(resolve_backend(name)) == name
        assert backend_name(object()) == "?"

    def test_register_backend_validates_interface(self):
        class Partial:
            def distance_block(self, *a, **k):  # pragma: no cover
                pass

        with pytest.raises(TypeError, match="missing kernel"):
            register_backend("partial", Partial())
        assert "partial" not in available_backends()

    def test_explicit_name_beats_override(self):
        with use_backend(DEFAULT_BACKEND):
            assert kernels.resolve_backend("reference") is resolve_backend(
                "reference"
            )


class TestPatternFilterStats:
    @pytest.fixture(scope="class")
    def graphs(self):
        return synthetic_database(
            30, avg_edges=10, density=0.4, num_labels=4, seed=11
        )

    def test_mask_matches_scalar_label_counts_ok(self, graphs):
        patterns = [PatternProfile(g) for g in graphs[:12]]
        stats = PatternFilterStats(patterns)
        for target in graphs[12:]:
            profile = TargetProfile(target)
            mask = stats.candidate_mask(profile)
            expected = np.array(
                [_label_counts_ok(p, profile) for p in patterns]
            )
            assert np.array_equal(mask, expected)

    def test_mask_agrees_across_backends(self, graphs):
        patterns = [PatternProfile(g) for g in graphs[:10]]
        stats = PatternFilterStats(patterns)
        profile = TargetProfile(graphs[20])
        masks = [
            stats.candidate_mask(profile, resolve_backend(name))
            for name in available_backends()
        ]
        for mask in masks[1:]:
            assert np.array_equal(mask, masks[0])

    def test_self_match_is_always_candidate(self, graphs):
        # A graph dominates its own invariants, so the filter may never
        # reject pattern == target (that would make VF2 miss matches).
        patterns = [PatternProfile(g) for g in graphs]
        stats = PatternFilterStats(patterns)
        for i, g in enumerate(graphs):
            assert stats.candidate_mask(TargetProfile(g))[i]


class TestLazyArray:
    def test_materialize_runs_producer_once(self):
        calls = []

        def produce():
            calls.append(1)
            return np.arange(6, dtype=float).reshape(2, 3)

        lazy = LazyArray((2, 3), np.float64, produce)
        a = lazy.materialize()
        b = lazy.materialize()
        assert a is b and len(calls) == 1
        assert lazy.shape == (2, 3) and lazy.dtype == np.float64

    def test_shape_mismatch_raises(self):
        lazy = LazyArray((4,), np.float64, lambda: np.zeros((5,)))
        with pytest.raises(ValueError, match="declared"):
            lazy.materialize()
