"""Tests for the DSPM majorization algorithm."""

import numpy as np
import pytest

from repro.core.dspm import DSPM, dspm_select
from repro.features import FeatureSpace
from repro.mining import mine_frequent_subgraphs
from repro.similarity import DissimilarityCache, pairwise_dissimilarity_matrix
from repro.utils.errors import SelectionError


@pytest.fixture(scope="module")
def setup(small_synthetic_db):
    feats = mine_frequent_subgraphs(small_synthetic_db, min_support=0.25,
                                    max_edges=3)
    space = FeatureSpace(feats, len(small_synthetic_db))
    delta = pairwise_dissimilarity_matrix(small_synthetic_db,
                                          DissimilarityCache())
    return space, delta


class TestValidation:
    def test_bad_p(self):
        with pytest.raises(SelectionError):
            DSPM(0)

    def test_bad_kernel(self):
        with pytest.raises(SelectionError):
            DSPM(3, kernel="fortran")

    def test_p_larger_than_universe(self, setup):
        space, delta = setup
        with pytest.raises(SelectionError):
            DSPM(space.m + 1).fit(space, delta)

    def test_delta_shape_checked(self, setup):
        space, _delta = setup
        with pytest.raises(SelectionError):
            DSPM(2).fit(space, np.zeros((3, 3)))


class TestConvergence:
    def test_objective_monotone_nonincreasing(self, setup):
        space, delta = setup
        res = DSPM(5, max_iterations=50, tolerance=0.0).fit(space, delta)
        h = res.objective_history
        assert all(h[i] >= h[i + 1] - 1e-9 for i in range(len(h) - 1)), (
            "majorization must not increase the stress"
        )

    def test_objective_strictly_improves_from_init(self, setup):
        space, delta = setup
        res = DSPM(5, max_iterations=30).fit(space, delta)
        assert res.objective_history[-1] < res.objective_history[0]

    def test_converged_flag(self, setup):
        space, delta = setup
        res = DSPM(5, max_iterations=500, tolerance=1e-3).fit(space, delta)
        assert res.converged
        res2 = DSPM(5, max_iterations=1, tolerance=0.0).fit(space, delta)
        assert not res2.converged

    def test_iteration_count_reported(self, setup):
        space, delta = setup
        res = DSPM(5, max_iterations=7, tolerance=0.0).fit(space, delta)
        assert res.iterations == 7


class TestSelection:
    def test_selects_requested_count(self, setup):
        space, delta = setup
        res = DSPM(6).fit(space, delta)
        assert len(res.selected) == 6
        assert len(set(res.selected)) == 6

    def test_selected_have_largest_weights(self, setup):
        space, delta = setup
        res = DSPM(4).fit(space, delta)
        chosen = set(res.selected)
        min_chosen = min(res.weights[r] for r in res.selected)
        others = [res.weights[r] for r in range(space.m) if r not in chosen]
        assert all(w <= min_chosen + 1e-12 for w in others)

    def test_weights_normalised(self, setup):
        space, delta = setup
        res = DSPM(4).fit(space, delta)
        assert np.sqrt((res.weights**2).sum()) == pytest.approx(1.0)

    def test_constant_feature_gets_zero_weight(self, setup):
        space, delta = setup
        Y = space.incidence.astype(float).copy()
        Y[:, 0] = 1.0  # make feature 0 ubiquitous
        res = DSPM(3).fit_matrix(Y, delta)
        assert res.weights[0] == 0.0

    def test_functional_facade(self, setup):
        space, delta = setup
        a = dspm_select(space, delta, 5)
        b = DSPM(5).fit(space, delta)
        assert a.selected == b.selected


class TestKernelEquivalence:
    def test_all_kernels_agree(self, setup):
        space, delta = setup
        n_sub = 10
        Y = space.incidence[:n_sub].astype(float)
        d = delta[:n_sub, :n_sub]
        results = {
            kernel: DSPM(3, max_iterations=4, tolerance=0.0, kernel=kernel)
            .fit_matrix(Y, d)
            for kernel in ("numpy", "inverted", "naive")
        }
        assert np.allclose(results["numpy"].weights, results["inverted"].weights)
        assert np.allclose(results["numpy"].weights, results["naive"].weights)
        assert results["numpy"].selected == results["naive"].selected

    def test_objective_histories_agree(self, setup):
        space, delta = setup
        n_sub = 8
        Y = space.incidence[:n_sub].astype(float)
        d = delta[:n_sub, :n_sub]
        h_np = DSPM(3, max_iterations=3, tolerance=0.0).fit_matrix(Y, d)
        h_inv = DSPM(3, max_iterations=3, tolerance=0.0,
                     kernel="inverted").fit_matrix(Y, d)
        assert np.allclose(h_np.objective_history, h_inv.objective_history)


class TestDistancePreservation:
    def test_dspm_reduces_stress_vs_random(self, setup):
        """The point of the algorithm: lower stress than a random c."""
        space, delta = setup
        res = DSPM(5, max_iterations=60).fit(space, delta)
        # Compare final stress against the initial uniform-weight stress.
        assert res.objective_history[-1] <= res.objective_history[0] * 0.9
