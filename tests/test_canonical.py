"""Tests for WL hashing and exact canonical signatures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import LabeledGraph, random_connected_graph
from repro.graph.canonical import (
    are_isomorphic_small,
    canonical_signature,
    weisfeiler_lehman_hash,
)


def relabel(graph: LabeledGraph, permutation) -> LabeledGraph:
    """Apply a vertex permutation: new_id = permutation[old_id]."""
    labels = [None] * graph.num_vertices
    for v in range(graph.num_vertices):
        labels[permutation[v]] = graph.vertex_label(v)
    g = LabeledGraph(labels)
    for e in graph.edges():
        g.add_edge(permutation[e.u], permutation[e.v], e.label)
    return g


class TestWLHash:
    def test_equal_for_identical(self, triangle):
        assert weisfeiler_lehman_hash(triangle) == weisfeiler_lehman_hash(triangle)

    def test_invariant_under_relabeling(self, square_with_diagonal):
        permuted = relabel(square_with_diagonal, [2, 3, 0, 1])
        assert weisfeiler_lehman_hash(square_with_diagonal) == (
            weisfeiler_lehman_hash(permuted)
        )

    def test_distinguishes_labels(self):
        a = LabeledGraph(["a", "a"], [(0, 1, "x")])
        b = LabeledGraph(["a", "b"], [(0, 1, "x")])
        assert weisfeiler_lehman_hash(a) != weisfeiler_lehman_hash(b)

    def test_distinguishes_edge_count(self, triangle, path3):
        assert weisfeiler_lehman_hash(triangle) != weisfeiler_lehman_hash(path3)


class TestCanonicalSignature:
    def test_invariant_under_permutation(self, triangle):
        permuted = relabel(triangle, [2, 0, 1])
        assert canonical_signature(triangle) == canonical_signature(permuted)

    def test_different_structures_differ(self, triangle, path3):
        assert canonical_signature(triangle) != canonical_signature(path3)

    def test_rejects_large_graph(self):
        g = LabeledGraph(["a"] * 20)
        with pytest.raises(ValueError):
            canonical_signature(g)

    def test_empty_graph(self):
        assert canonical_signature(LabeledGraph()) == ((), ())

    def test_are_isomorphic_small(self, triangle):
        permuted = relabel(triangle, [1, 2, 0])
        assert are_isomorphic_small(triangle, permuted)
        bigger = LabeledGraph(["a", "a", "b", "b"], [(0, 1, "x")])
        assert not are_isomorphic_small(triangle, bigger)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.randoms(use_true_random=False))
def test_canonical_signature_permutation_property(seed, rnd):
    """Property: any vertex permutation preserves the canonical signature."""
    g = random_connected_graph(6, 7, num_vertex_labels=2, num_edge_labels=2, seed=seed)
    perm = list(range(6))
    rnd.shuffle(perm)
    assert canonical_signature(g) == canonical_signature(relabel(g, perm))
