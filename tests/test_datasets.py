"""Tests for the chemical surrogate and synthetic dataset generators."""

import pytest

from repro.datasets import (
    chemical_database,
    chemical_query_set,
    synthetic_database,
    synthetic_query_set,
)
from repro.datasets.chemical import (
    ABSOLUTE_VALENCE,
    ATOMS,
    SCAFFOLDS,
    _used_valence,
)


class TestChemicalDatabase:
    def test_size_range_respected(self):
        db = chemical_database(25, size_range=(10, 20), seed=0)
        assert len(db) == 25
        for g in db:
            assert 10 <= g.num_vertices <= 20

    def test_connected(self):
        for g in chemical_database(20, seed=1):
            assert g.is_connected()

    def test_deterministic(self):
        a = chemical_database(10, seed=5)
        b = chemical_database(10, seed=5)
        assert all(x == y for x, y in zip(a, b))

    def test_valence_limits_respected(self):
        """No atom ever exceeds its absolute chemical valence.

        Growth uses the conservative ATOMS valences; scaffolds may seed
        hypervalent sulfonyl/phosphate groups up to ABSOLUTE_VALENCE.
        """
        for g in chemical_database(25, seed=2):
            for v in range(g.num_vertices):
                label = g.vertex_label(v)
                assert _used_valence(g, v) <= ABSOLUTE_VALENCE[label], (
                    f"{label} atom exceeds valence in {g.graph_id}"
                )

    def test_atom_labels_valid(self):
        atoms = {a for a, _v, _w in ATOMS}
        for g in chemical_database(15, seed=3):
            for v in range(g.num_vertices):
                assert g.vertex_label(v) in atoms

    def test_bond_labels_valid(self):
        for g in chemical_database(15, seed=4):
            for e in g.edges():
                assert e.label in ("s", "d")

    def test_family_restriction(self):
        db = chemical_database(10, num_families=1, seed=6)
        # All graphs grow from the same scaffold (the benzene-like ring).
        scaffold = SCAFFOLDS[0]()
        for g in db:
            assert g.num_vertices >= scaffold.num_vertices

    def test_too_small_size_rejected(self):
        with pytest.raises(ValueError):
            chemical_database(5, size_range=(2, 4))

    def test_query_set_distinct_ids(self):
        queries = chemical_query_set(5, seed=9)
        assert len({g.graph_id for g in queries}) == 5
        assert all(str(g.graph_id).startswith("query") for g in queries)

    def test_scaffolds_respect_absolute_valence(self):
        for factory in SCAFFOLDS:
            g = factory()
            for v in range(g.num_vertices):
                assert _used_valence(g, v) <= ABSOLUTE_VALENCE[g.vertex_label(v)]


class TestSyntheticDataset:
    def test_database_defaults(self):
        db = synthetic_database(10, seed=0)
        assert len(db) == 10
        assert all(g.is_connected() for g in db)

    def test_query_set(self):
        queries = synthetic_query_set(5, seed=1)
        assert len(queries) == 5

    def test_label_alphabet(self):
        db = synthetic_database(10, num_labels=4, seed=2)
        labels = {g.vertex_label(v) for g in db for v in range(g.num_vertices)}
        assert labels <= set(range(4))

    def test_avg_edges_parameter(self):
        small = synthetic_database(20, avg_edges=10, seed=3)
        large = synthetic_database(20, avg_edges=25, seed=3)
        mean = lambda db: sum(g.num_edges for g in db) / len(db)  # noqa: E731
        assert mean(small) < mean(large)
