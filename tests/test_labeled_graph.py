"""Unit tests for the core LabeledGraph type."""

import pytest

from repro.graph import Edge, LabeledGraph
from repro.utils.errors import InvalidGraphError


class TestConstruction:
    def test_empty_graph(self):
        g = LabeledGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_vertices_and_labels(self):
        g = LabeledGraph(["a", "b", "c"])
        assert g.num_vertices == 3
        assert g.vertex_label(0) == "a"
        assert g.vertex_labels() == ["a", "b", "c"]

    def test_add_vertex_returns_id(self):
        g = LabeledGraph(["a"])
        assert g.add_vertex("b") == 1
        assert g.add_vertex("c") == 2

    def test_edges_from_constructor(self):
        g = LabeledGraph(["a", "b"], [(0, 1, "x")])
        assert g.num_edges == 1
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.edge_label(0, 1) == "x"
        assert g.edge_label(1, 0) == "x"

    def test_self_loop_rejected(self):
        g = LabeledGraph(["a"])
        with pytest.raises(InvalidGraphError):
            g.add_edge(0, 0, "x")

    def test_duplicate_edge_rejected(self):
        g = LabeledGraph(["a", "b"], [(0, 1, "x")])
        with pytest.raises(InvalidGraphError):
            g.add_edge(1, 0, "y")

    def test_out_of_range_endpoint_rejected(self):
        g = LabeledGraph(["a", "b"])
        with pytest.raises(InvalidGraphError):
            g.add_edge(0, 5, "x")

    def test_missing_edge_label_raises(self):
        g = LabeledGraph(["a", "b"])
        with pytest.raises(InvalidGraphError):
            g.edge_label(0, 1)


class TestAccessors:
    def test_edges_iterated_once_ascending(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        assert all(e.u < e.v for e in edges)

    def test_degree_and_neighbors(self, triangle):
        assert triangle.degree(0) == 2
        assert sorted(triangle.neighbors(0)) == [1, 2]
        items = dict(triangle.neighbor_items(0))
        assert items == {1: "x", 2: "x"}

    def test_density_triangle(self, triangle):
        assert triangle.density() == pytest.approx(1.0)

    def test_density_small_graphs(self):
        assert LabeledGraph().density() == 0.0
        assert LabeledGraph(["a"]).density() == 0.0

    def test_label_multiset(self, triangle):
        assert dict(triangle.label_multiset()) == {"a": 2, "b": 1}


class TestDerivedGraphs:
    def test_subgraph_induced(self, square_with_diagonal):
        sub = square_with_diagonal.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        # edges 0-1, 1-2, 0-2 all survive induction
        assert sub.num_edges == 3

    def test_edge_subgraph(self, square_with_diagonal):
        edges = [e for e in square_with_diagonal.edges()][:2]
        sub = square_with_diagonal.edge_subgraph(edges)
        assert sub.num_edges == 2
        assert sub.num_vertices <= 4

    def test_copy_independent(self, triangle):
        c = triangle.copy()
        assert c == triangle
        c.add_vertex("z")
        assert c.num_vertices == triangle.num_vertices + 1

    def test_connected_components(self):
        g = LabeledGraph(["a", "a", "b", "b"], [(0, 1, "x"), (2, 3, "x")])
        comps = g.connected_components()
        assert sorted(map(tuple, comps)) == [(0, 1), (2, 3)]
        assert not g.is_connected()

    def test_empty_graph_connected(self):
        assert LabeledGraph().is_connected()


class TestEquality:
    def test_structural_equality(self):
        a = LabeledGraph(["a", "b"], [(0, 1, "x")])
        b = LabeledGraph(["a", "b"], [(0, 1, "x")])
        assert a == b
        assert hash(a) == hash(b)

    def test_different_labels_not_equal(self):
        a = LabeledGraph(["a", "b"], [(0, 1, "x")])
        b = LabeledGraph(["a", "b"], [(0, 1, "y")])
        assert a != b

    def test_isomorphic_but_renumbered_not_equal(self):
        a = LabeledGraph(["a", "b", "c"], [(0, 1, "x")])
        b = LabeledGraph(["b", "a", "c"], [(0, 1, "x")])
        assert a != b


class TestEdgeDataclass:
    def test_normalized_orders_endpoints(self):
        assert Edge(3, 1, "x").normalized() == Edge(1, 3, "x")
        assert Edge(1, 3, "x").normalized() == Edge(1, 3, "x")

    def test_endpoints(self):
        assert Edge(2, 5, "x").endpoints() == (2, 5)
