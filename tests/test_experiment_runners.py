"""Smoke tests: every experiment runner completes at a tiny scale.

A "tiny" scale is injected into the harness so each runner finishes in
seconds; the benchmark suite exercises the real shapes at "small" scale.
"""

import pytest

import repro.experiments.harness as harness
from repro.experiments import RUNNERS
from repro.experiments.harness import Scale

TINY = Scale(
    name="tiny",
    db_size=16,
    query_count=4,
    num_features=6,
    min_support=0.25,
    max_pattern_edges=3,
    top_ks=(3,),
    dspm_iterations=15,
    synthetic_num_labels=4,
    synthetic_density=0.3,
    synthetic_min_support=0.3,
)


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch, tmp_path):
    monkeypatch.setitem(harness.SCALES, "tiny", TINY)
    monkeypatch.setattr(harness, "CACHE_DIR", tmp_path / "cache")


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_runner_completes(name, tmp_path):
    if name == "fig9":
        pytest.skip("fig9 generates its own database sizes; covered by bench")
    result = RUNNERS[name](scale="tiny", seed=0, out_dir=str(tmp_path / "out"))
    assert "report" in result
    assert result["report"].strip()
    # The report file landed on disk.
    written = list((tmp_path / "out").glob("*.txt"))
    assert written, "runner should write its report"
