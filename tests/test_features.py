"""Tests for the feature space: incidence, inverted lists, embeddings."""

import numpy as np
import pytest

from repro.features import FeatureSpace, jaccard_correlation, total_correlation_score
from repro.features.binary_matrix import (
    cross_normalized_euclidean_distances,
    normalized_euclidean_distances,
)
from repro.isomorphism import is_subgraph
from repro.mining import mine_frequent_subgraphs
from repro.utils.errors import SelectionError


@pytest.fixture(scope="module")
def space_and_db(small_synthetic_db):
    feats = mine_frequent_subgraphs(small_synthetic_db, min_support=0.3, max_edges=3)
    return FeatureSpace(feats, len(small_synthetic_db)), small_synthetic_db


class TestConstruction:
    def test_empty_universe_rejected(self):
        with pytest.raises(SelectionError):
            FeatureSpace([], 10)

    def test_incidence_matches_supports(self, space_and_db):
        space, _db = space_and_db
        for r, feat in enumerate(space.features):
            assert set(space.inverted_feature_list(r).tolist()) == feat.support

    def test_support_counts(self, space_and_db):
        space, _db = space_and_db
        assert (space.support_counts == space.incidence.sum(axis=0)).all()

    def test_out_of_range_support_rejected(self, space_and_db):
        space, db = space_and_db
        feats = list(space.features)
        bad = type(feats[0])(feats[0].graph, {999}, feats[0].dfs_code)
        with pytest.raises(SelectionError):
            FeatureSpace([bad], len(db))


class TestInvertedLists:
    def test_ig_consistent_with_if(self, space_and_db):
        space, _db = space_and_db
        for i in range(space.n):
            for r in space.inverted_graph_list(i):
                assert i in space.inverted_feature_list(r)


class TestEmbeddings:
    def test_database_embedding_full(self, space_and_db):
        space, _db = space_and_db
        emb = space.embed_database()
        assert emb.shape == (space.n, space.m)
        assert set(np.unique(emb)) <= {0.0, 1.0}

    def test_database_embedding_selected(self, space_and_db):
        space, _db = space_and_db
        sel = [0, min(2, space.m - 1)]
        emb = space.embed_database(sel)
        assert emb.shape == (space.n, len(sel))
        assert (emb == space.incidence[:, sel]).all()

    def test_query_embedding_matches_vf2(self, space_and_db):
        space, db = space_and_db
        q = db[0]  # a database graph used as query
        vec = space.embed_query(q)
        for r in range(space.m):
            assert vec[r] == float(is_subgraph(space.features[r].graph, q))

    def test_database_graph_as_query_matches_incidence(self, space_and_db):
        space, db = space_and_db
        vec = space.embed_query(db[3])
        assert (vec == space.incidence[3]).all()

    def test_embed_many(self, space_and_db):
        space, db = space_and_db
        stack = space.embed_queries(db[:3])
        assert stack.shape == (3, space.m)


class TestDistances:
    def test_normalized_distance_range(self, space_and_db):
        space, _db = space_and_db
        d = normalized_euclidean_distances(space.embed_database())
        assert (d >= 0).all() and (d <= 1).all()
        assert np.allclose(np.diag(d), 0.0)
        assert np.allclose(d, d.T)

    def test_cross_distance_matches_pairwise(self, space_and_db):
        space, _db = space_and_db
        emb = space.embed_database()
        cross = cross_normalized_euclidean_distances(emb[:4], emb)
        full = normalized_euclidean_distances(emb)
        assert np.allclose(cross, full[:4])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cross_normalized_euclidean_distances(np.ones((2, 3)), np.ones((2, 4)))

    def test_zero_dimensional(self):
        d = normalized_euclidean_distances(np.zeros((3, 0)))
        assert (d == 0).all()


class TestCorrelation:
    def test_self_correlation_is_one(self, space_and_db):
        space, _db = space_and_db
        r = 0
        assert jaccard_correlation(space, r, r) == pytest.approx(1.0)

    def test_symmetric(self, space_and_db):
        space, _db = space_and_db
        if space.m >= 2:
            assert jaccard_correlation(space, 0, 1) == pytest.approx(
                jaccard_correlation(space, 1, 0)
            )

    def test_total_matches_manual_sum(self, space_and_db):
        space, _db = space_and_db
        sel = list(range(min(5, space.m)))
        manual = sum(
            jaccard_correlation(space, sel[i], sel[j])
            for i in range(len(sel))
            for j in range(i + 1, len(sel))
        )
        assert total_correlation_score(space, sel) == pytest.approx(manual)

    def test_single_feature_zero(self, space_and_db):
        space, _db = space_and_db
        assert total_correlation_score(space, [0]) == 0.0
