"""Property tests for the Section 4.1 theory, checked against exact MCS.

These tests generate random graph/subgraph pairs, compute the true
dissimilarities and mapped distances, and assert the paper's bounds hold
— i.e. our implementation of the theorems is consistent with our
implementation of MCS, VF2, and the mapping.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import bounds
from repro.graph import LabeledGraph, random_connected_graph
from repro.isomorphism import mcs_edge_count
from repro.similarity import delta1, delta2
from repro.utils.rng import ensure_rng


def random_subgraph(graph: LabeledGraph, rng, keep_fraction=0.6) -> LabeledGraph:
    """A random edge-subgraph of *graph* (q' ⊆ q by construction)."""
    edges = list(graph.edges())
    keep = max(1, int(round(len(edges) * keep_fraction)))
    idx = rng.choice(len(edges), size=keep, replace=False)
    return graph.edge_subgraph([edges[i] for i in sorted(idx)])


class TestInterval:
    def test_contains(self):
        iv = bounds.Interval(0.2, 0.8)
        assert iv.contains(0.5)
        assert iv.contains(0.2)
        assert not iv.contains(0.9)
        assert iv.width() == pytest.approx(0.6)

    def test_slack(self):
        iv = bounds.Interval(0.0, 1.0)
        assert iv.contains(1.0 + 1e-12)


class TestLemma41:
    def test_interval_form(self):
        iv = bounds.lemma_4_1_bounds(10, 7)
        assert iv.lo == 0.0
        assert iv.hi == 3.0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            bounds.lemma_4_1_bounds(5, 6)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_xi_within_bounds(self, seed):
        """0 ≤ |E(mcs(q,g))| − |E(mcs(q',g))| ≤ |E(q)| − |E(q')|."""
        rng = ensure_rng(seed)
        q = random_connected_graph(6, 8, num_vertex_labels=2, seed=rng)
        g = random_connected_graph(5, 6, num_vertex_labels=2, seed=rng)
        q_sub = random_subgraph(q, rng)
        xi = mcs_edge_count(q, g) - mcs_edge_count(q_sub, g)
        iv = bounds.lemma_4_1_bounds(q.num_edges, q_sub.num_edges)
        assert iv.contains(xi)


class TestTheorems41And42:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_delta1_interval_holds(self, seed):
        rng = ensure_rng(seed)
        q = random_connected_graph(6, 8, num_vertex_labels=2, seed=rng)
        g = random_connected_graph(5, 6, num_vertex_labels=2, seed=rng)
        q_sub = random_subgraph(q, rng)
        alpha = delta1(q, g)
        iv = bounds.theorem_4_1_interval(
            q.num_edges, q_sub.num_edges, g.num_edges, alpha
        )
        assert iv.contains(delta1(q_sub, g))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_delta2_interval_holds(self, seed):
        rng = ensure_rng(seed)
        q = random_connected_graph(6, 8, num_vertex_labels=2, seed=rng)
        g = random_connected_graph(5, 6, num_vertex_labels=2, seed=rng)
        q_sub = random_subgraph(q, rng)
        alpha = delta2(q, g)
        iv = bounds.theorem_4_2_interval(
            q.num_edges, q_sub.num_edges, g.num_edges, alpha
        )
        assert iv.contains(delta2(q_sub, g))

    def test_epsilons_shrink_as_qsub_approaches_q(self):
        """ε terms vanish when q' = q (the paper's 'very close' remark)."""
        assert bounds.epsilon_1r(10, 10, 8) == 0.0
        assert bounds.epsilon_2(10, 10, 8) == 0.0
        assert bounds.epsilon_1l(10, 8, 12, alpha=0.5) > bounds.epsilon_1l(
            10, 10, 12, alpha=0.5
        )


class TestTheorem43:
    def test_interval_form(self):
        iv = bounds.theorem_4_3_interval(0.5, t=4, p=16)
        assert iv.lo == pytest.approx(0.0)
        assert iv.hi == pytest.approx(1.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            bounds.theorem_4_3_interval(0.5, t=1, p=0)
        with pytest.raises(ValueError):
            bounds.theorem_4_3_interval(0.5, t=-1, p=4)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_mapped_distance_interval_holds(self, seed):
        """β − √(t/p) ≤ d(y_q', y_g) ≤ β + √(t/p) with real embeddings.

        We simulate F(q), F(q'), F(g) as random bit-vectors with
        F(q') ⊆ F(q), which is exactly the structure Theorem 4.3 uses.
        """
        rng = ensure_rng(seed)
        p = int(rng.integers(4, 32))
        yq = (rng.random(p) < 0.5).astype(float)
        # q' keeps a random subset of q's features.
        keep = rng.random(p) < 0.7
        yq_sub = yq * keep
        yg = (rng.random(p) < 0.5).astype(float)
        beta = math.sqrt(((yq - yg) ** 2).sum() / p)
        d_sub = math.sqrt(((yq_sub - yg) ** 2).sum() / p)
        t = int(yq.sum() - yq_sub.sum())
        iv = bounds.theorem_4_3_interval(beta, t=t, p=p)
        assert iv.contains(d_sub)


class TestCorollaries:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_corollary_4_1_ratio_bounded(self, seed):
        """λ = δ(q',g)/d(y_q',y_g) lies in the corollary's interval."""
        rng = ensure_rng(seed)
        q = random_connected_graph(6, 8, num_vertex_labels=2, seed=rng)
        g = random_connected_graph(5, 6, num_vertex_labels=2, seed=rng)
        q_sub = random_subgraph(q, rng)

        # Simulated feature embeddings with F(q') ⊆ F(q).
        p = 16
        yq = (rng.random(p) < 0.6).astype(float)
        yq_sub = yq * (rng.random(p) < 0.7)
        yg = (rng.random(p) < 0.5).astype(float)
        beta = math.sqrt(((yq - yg) ** 2).sum() / p)
        d_sub = math.sqrt(((yq_sub - yg) ** 2).sum() / p)
        if d_sub == 0 or beta == 0:
            return  # ratio undefined; the corollary presumes positive distance
        t = int(yq.sum() - yq_sub.sum())

        for name, fn in (("delta1", delta1), ("delta2", delta2)):
            alpha = fn(q, g)
            iv = bounds.corollary_4_1_interval(
                name, q.num_edges, q_sub.num_edges, g.num_edges,
                alpha, beta, t, p,
            )
            assert iv.contains(fn(q_sub, g) / d_sub)

    def test_corollary_4_2_unknown_dissimilarity(self):
        with pytest.raises(ValueError):
            bounds.corollary_4_2_interval("deltaX", 5, 4, 4, 0.5, 0.5, 1, 8)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_corollary_4_2_ratio_bounded(self, seed):
        """λ' = δ(q,g)/d(y_q,y_g) lies in Corollary 4.2's interval."""
        rng = ensure_rng(seed)
        q = random_connected_graph(6, 8, num_vertex_labels=2, seed=rng)
        g = random_connected_graph(5, 6, num_vertex_labels=2, seed=rng)
        q_sub = random_subgraph(q, rng)

        p = 16
        yq = (rng.random(p) < 0.6).astype(float)
        yq_sub = yq * (rng.random(p) < 0.7)
        yg = (rng.random(p) < 0.5).astype(float)
        beta = math.sqrt(((yq - yg) ** 2).sum() / p)
        beta_sub = math.sqrt(((yq_sub - yg) ** 2).sum() / p)
        if beta == 0 or beta_sub == 0:
            return
        t = int(yq.sum() - yq_sub.sum())

        for name, fn in (("delta1", delta1), ("delta2", delta2)):
            alpha_sub = fn(q_sub, g)
            iv = bounds.corollary_4_2_interval(
                name, q.num_edges, q_sub.num_edges, g.num_edges,
                alpha_sub, beta_sub, t, p,
            )
            assert iv.contains(fn(q, g) / beta)
