"""Tests for DSPMap and the recursive partitioner."""

import numpy as np
import pytest

from repro.core.dspm import DSPM
from repro.core.dspmap import DSPMap
from repro.core.mapping import mapping_from_selection
from repro.core.partition import partition_database
from repro.features import FeatureSpace
from repro.mining import mine_frequent_subgraphs
from repro.query.engine import FeatureLattice
from repro.similarity import DissimilarityCache, pairwise_dissimilarity_matrix
from repro.utils.errors import SelectionError


@pytest.fixture(scope="module")
def setup(small_chemical_db):
    feats = mine_frequent_subgraphs(small_chemical_db, min_support=0.2,
                                    max_edges=3)
    space = FeatureSpace(feats, len(small_chemical_db))
    delta = pairwise_dissimilarity_matrix(small_chemical_db,
                                          DissimilarityCache())
    return space, small_chemical_db, delta


class TestPartitioner:
    def test_blocks_cover_all_indices(self, setup):
        space, _db, _delta = setup
        blocks = partition_database(space.incidence, partition_size=8, seed=0)
        merged = np.concatenate(blocks)
        assert sorted(merged.tolist()) == list(range(space.n))

    def test_block_size_cap(self, setup):
        space, _db, _delta = setup
        for block in partition_database(space.incidence, partition_size=8, seed=0):
            assert 1 <= len(block) <= 8

    def test_no_split_when_small(self, setup):
        space, _db, _delta = setup
        blocks = partition_database(space.incidence, partition_size=space.n, seed=0)
        assert len(blocks) == 1

    def test_balanced_blocks_near_b(self, setup):
        space, _db, _delta = setup
        blocks = partition_database(space.incidence, partition_size=10,
                                    seed=0, balance=True)
        # Balanced splits give floor(np/2)*b to one side, so all blocks
        # except possibly the last are exactly b.
        sizes = sorted(len(b) for b in blocks)
        assert sizes[-1] == 10

    def test_invalid_partition_size(self, setup):
        space, _db, _delta = setup
        with pytest.raises(ValueError):
            partition_database(space.incidence, partition_size=0)

    def test_deterministic_under_seed(self, setup):
        space, _db, _delta = setup
        a = partition_database(space.incidence, partition_size=8, seed=5)
        b = partition_database(space.incidence, partition_size=8, seed=5)
        assert all((x == y).all() for x, y in zip(a, b))


class TestDSPMap:
    def test_validation(self):
        with pytest.raises(SelectionError):
            DSPMap(0)
        with pytest.raises(SelectionError):
            DSPMap(3, partition_size=1)

    def test_selects_p_features(self, setup):
        space, db, delta = setup
        res = DSPMap(6, partition_size=10, seed=0).fit(
            space, db, delta_fn=lambda i, j: float(delta[i, j])
        )
        assert len(res.selected) == 6

    def test_fewer_delta_evaluations_than_full(self, setup):
        space, db, delta = setup
        solver = DSPMap(6, partition_size=10, seed=0)
        solver.fit(space, db, delta_fn=lambda i, j: float(delta[i, j]))
        full = space.n * (space.n - 1) // 2
        assert 0 < solver.delta_evaluations_ < full

    def test_works_with_dissimilarity_cache(self, setup):
        space, db, _delta = setup
        cache = DissimilarityCache()
        res = DSPMap(4, partition_size=12, seed=1).fit(space, db, cache)
        assert len(res.selected) == 4
        assert cache.misses > 0

    def test_overlap_with_dspm(self, setup):
        """DSPMap approximates DSPM: selections overlap substantially."""
        space, db, delta = setup
        p = 8
        exact = DSPM(p, max_iterations=80).fit(space, delta)
        approx = DSPMap(p, partition_size=15, seed=0,
                        max_iterations=80).fit(
            space, db, delta_fn=lambda i, j: float(delta[i, j])
        )
        overlap = len(set(exact.selected) & set(approx.selected))
        assert overlap >= p // 3, (
            f"only {overlap}/{p} selected features shared with DSPM"
        )

    def test_graph_count_mismatch_rejected(self, setup):
        space, db, delta = setup
        with pytest.raises(SelectionError):
            DSPMap(3, partition_size=5).fit(
                space, db[:-1], delta_fn=lambda i, j: 0.0
            )

    def test_weights_cover_all_features(self, setup):
        space, db, delta = setup
        res = DSPMap(4, partition_size=10, seed=0).fit(
            space, db, delta_fn=lambda i, j: float(delta[i, j])
        )
        assert res.weights.shape == (space.m,)

    def test_unbalanced_mode_runs(self, setup):
        space, db, delta = setup
        res = DSPMap(4, partition_size=10, seed=0, balance=False).fit(
            space, db, delta_fn=lambda i, j: float(delta[i, j])
        )
        assert len(res.selected) == 4


class TestBlockMappings:
    @pytest.fixture(scope="class")
    def fitted(self, setup):
        space, db, delta = setup
        solver = DSPMap(8, partition_size=10, seed=0)
        result = solver.fit(space, db, delta_fn=lambda i, j: float(delta[i, j]))
        mapping = mapping_from_selection(space, result.selected)
        return solver, mapping

    def test_requires_fit_first(self, setup):
        space, _db, _delta = setup
        with pytest.raises(SelectionError):
            DSPMap(4).block_mappings(
                mapping_from_selection(space, [0, 1])
            )

    def test_rejects_mapping_from_other_database(self, fitted):
        solver, _mapping = fitted
        other_db = FeatureSpace(
            _mapping.space.features, _mapping.space.n + 1
        )
        with pytest.raises(SelectionError):
            solver.block_mappings(
                mapping_from_selection(other_db, _mapping.selected)
            )

    def test_blocks_cover_rows_and_restrict_features(self, fitted):
        solver, mapping = fitted
        blocks = solver.block_mappings(mapping)
        assert len(blocks) == len(solver.partitions_)
        total_rows = sum(b.space.n for b in blocks)
        assert total_rows == mapping.space.n
        selected_graphs = {
            id(f.graph) for f in mapping.selected_features()
        }
        for block, rows in zip(blocks, solver.partitions_):
            assert block.space.n == len(rows)
            # Block features are a subset of the parent selection (the
            # restricted feature set F' — same graph objects, no copies).
            for feat in block.space.features:
                assert id(feat.graph) in selected_graphs
            # Vectors are the parent rows restricted to F'.
            assert block.database_vectors.shape == (
                len(rows),
                block.dimensionality,
            )

    def test_block_engines_cost_zero_vf2_lattice_builds(
        self, fitted, monkeypatch
    ):
        solver, mapping = fitted
        mapping.query_engine()  # parent lattice built once, up front
        calls = {"n": 0}
        real = FeatureLattice.build.__func__

        def counting(cls, *args, **kwargs):
            calls["n"] += 1
            return real(cls, *args, **kwargs)

        monkeypatch.setattr(FeatureLattice, "build", classmethod(counting))
        blocks = solver.block_mappings(mapping)
        for block in blocks:
            assert block._engine is not None
        assert calls["n"] == 0

    def test_block_embedding_matches_naive(self, fitted, setup):
        """Per-partition engines embed exactly like the naive per-feature
        scan over the block's restricted feature set."""
        _space, db, _delta = setup
        solver, mapping = fitted
        blocks = solver.block_mappings(mapping)
        queries = db[:3]  # any graphs work as queries
        for block in blocks[:3]:
            engine = block.query_engine()
            for q in queries:
                naive = block.space.embed_query(q, block.selected)
                assert np.array_equal(engine.embed(q), naive)
