"""Tests for the dictionary fingerprint and Tanimoto ranking."""

import numpy as np
import pytest

from repro.fingerprint import DictionaryFingerprint, tanimoto
from repro.fingerprint.dictionary import enumerate_label_paths
from repro.graph import LabeledGraph


class TestPathEnumeration:
    def test_single_vertex_paths(self):
        g = LabeledGraph(["a", "b"])
        paths = enumerate_label_paths(g, max_edges=2)
        assert len(paths) == 2  # the two 0-edge paths

    def test_edge_paths_counted_once(self):
        g = LabeledGraph(["a", "b"], [(0, 1, "x")])
        paths = enumerate_label_paths(g, max_edges=1)
        one_edge = [k for k in paths if len(k) == 3]
        assert len(one_edge) == 1

    def test_path_and_reverse_identified(self):
        ab = LabeledGraph(["a", "b"], [(0, 1, "x")])
        ba = LabeledGraph(["b", "a"], [(0, 1, "x")])
        paths_ab = set(enumerate_label_paths(ab, 1))
        paths_ba = set(enumerate_label_paths(ba, 1))
        assert paths_ab == paths_ba

    def test_simple_paths_only(self, triangle):
        # In a triangle, 2-edge simple paths exist but no path revisits.
        paths = enumerate_label_paths(triangle, max_edges=3)
        lengths = {(len(k) - 1) // 2 for k in paths}
        assert max(lengths) <= 3


class TestTanimoto:
    def test_identical(self):
        a = np.array([1, 0, 1, 1])
        assert tanimoto(a, a) == 1.0

    def test_disjoint(self):
        assert tanimoto(np.array([1, 0]), np.array([0, 1])) == 0.0

    def test_empty_vectors(self):
        z = np.zeros(4)
        assert tanimoto(z, z) == 0.0

    def test_known_value(self):
        a = np.array([1, 1, 0, 0])
        b = np.array([1, 0, 1, 0])
        assert tanimoto(a, b) == pytest.approx(1 / 3)


class TestDictionaryFingerprint:
    def test_dictionary_capped(self, small_chemical_db):
        fp = DictionaryFingerprint(small_chemical_db, dictionary_size=50,
                                   max_path_edges=3)
        assert fp.num_bits <= 50

    def test_encoding_binary(self, small_chemical_db):
        fp = DictionaryFingerprint(small_chemical_db, dictionary_size=100,
                                   max_path_edges=3)
        bits = fp.encode(small_chemical_db[0])
        assert set(np.unique(bits)) <= {0, 1}

    def test_reference_graphs_nonzero(self, small_chemical_db):
        fp = DictionaryFingerprint(small_chemical_db, dictionary_size=100,
                                   max_path_edges=3)
        for g in small_chemical_db[:5]:
            assert fp.encode(g).sum() > 0

    def test_rank_self_first(self, small_chemical_db):
        fp = DictionaryFingerprint(small_chemical_db, dictionary_size=200,
                                   max_path_edges=3)
        db_bits = fp.encode_many(small_chemical_db)
        ranking = fp.rank(small_chemical_db[4], db_bits, k=5)
        assert ranking[0] == 4  # identical fingerprint → Tanimoto 1.0

    def test_encode_many_shape(self, small_chemical_db):
        fp = DictionaryFingerprint(small_chemical_db[:10], dictionary_size=80,
                                   max_path_edges=2)
        stack = fp.encode_many(small_chemical_db[:10])
        assert stack.shape == (10, fp.num_bits)

    def test_dictionary_deterministic(self, small_chemical_db):
        a = DictionaryFingerprint(small_chemical_db, dictionary_size=60,
                                  max_path_edges=2)
        b = DictionaryFingerprint(small_chemical_db, dictionary_size=60,
                                  max_path_edges=2)
        assert a.dictionary == b.dictionary
